//! Particle data: the irregular half of ENZO's grid payload.
//!
//! A particle carries the arrays the paper enumerates: ID, position,
//! velocity, mass, and extra attributes. They are stored as a struct of
//! arrays because the file formats store *one 1-D dataset per array*, in
//! a fixed order, and partition them by particle position (paper Fig. 4).

/// Number of extra per-particle attribute arrays (e.g. creation time,
/// metallicity).
pub const NUM_ATTRS: usize = 2;

/// Names and element widths of the particle datasets in their fixed file
/// order.
pub const PARTICLE_ARRAYS: [(&str, u64); 10] = [
    ("particle_id", 8),
    ("particle_position_x", 8),
    ("particle_position_y", 8),
    ("particle_position_z", 8),
    ("particle_velocity_x", 4),
    ("particle_velocity_y", 4),
    ("particle_velocity_z", 4),
    ("particle_mass", 4),
    ("particle_attr0", 4),
    ("particle_attr1", 4),
];

/// Bytes per particle across all arrays.
pub fn bytes_per_particle() -> u64 {
    PARTICLE_ARRAYS.iter().map(|(_, w)| w).sum()
}

/// A set of particles, struct-of-arrays.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParticleSet {
    pub id: Vec<i64>,
    pub pos: [Vec<f64>; 3],
    pub vel: [Vec<f32>; 3],
    pub mass: Vec<f32>,
    pub attrs: [Vec<f32>; NUM_ATTRS],
}

impl ParticleSet {
    pub fn new() -> ParticleSet {
        ParticleSet::default()
    }

    pub fn with_capacity(n: usize) -> ParticleSet {
        ParticleSet {
            id: Vec::with_capacity(n),
            pos: std::array::from_fn(|_| Vec::with_capacity(n)),
            vel: std::array::from_fn(|_| Vec::with_capacity(n)),
            mass: Vec::with_capacity(n),
            attrs: std::array::from_fn(|_| Vec::with_capacity(n)),
        }
    }

    pub fn len(&self) -> usize {
        self.id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    pub fn push(
        &mut self,
        id: i64,
        pos: [f64; 3],
        vel: [f32; 3],
        mass: f32,
        attrs: [f32; NUM_ATTRS],
    ) {
        self.id.push(id);
        for d in 0..3 {
            self.pos[d].push(pos[d]);
            self.vel[d].push(vel[d]);
        }
        self.mass.push(mass);
        for (a, v) in self.attrs.iter_mut().zip(attrs) {
            a.push(v);
        }
    }

    pub fn get(&self, i: usize) -> (i64, [f64; 3], [f32; 3], f32, [f32; NUM_ATTRS]) {
        (
            self.id[i],
            [self.pos[0][i], self.pos[1][i], self.pos[2][i]],
            [self.vel[0][i], self.vel[1][i], self.vel[2][i]],
            self.mass[i],
            std::array::from_fn(|k| self.attrs[k][i]),
        )
    }

    pub fn extend(&mut self, other: &ParticleSet) {
        self.id.extend_from_slice(&other.id);
        for d in 0..3 {
            self.pos[d].extend_from_slice(&other.pos[d]);
            self.vel[d].extend_from_slice(&other.vel[d]);
        }
        self.mass.extend_from_slice(&other.mass);
        for (a, b) in self.attrs.iter_mut().zip(&other.attrs) {
            a.extend_from_slice(b);
        }
    }

    /// Reorder all arrays so `id` is ascending (the order in which the
    /// particles were initially read — required for the combined top-grid
    /// dump).
    pub fn sort_by_id(&mut self) {
        let mut perm: Vec<usize> = (0..self.len()).collect();
        perm.sort_by_key(|&i| self.id[i]);
        self.apply_permutation(&perm);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        fn permute<T: Copy>(v: &mut Vec<T>, perm: &[usize]) {
            let out: Vec<T> = perm.iter().map(|&i| v[i]).collect();
            *v = out;
        }
        permute(&mut self.id, perm);
        for d in 0..3 {
            permute(&mut self.pos[d], perm);
            permute(&mut self.vel[d], perm);
        }
        permute(&mut self.mass, perm);
        for a in self.attrs.iter_mut() {
            permute(a, perm);
        }
    }

    /// Split into per-destination sets by a position classifier.
    pub fn partition_by(&self, ndst: usize, f: impl Fn([f64; 3]) -> usize) -> Vec<ParticleSet> {
        let mut out: Vec<ParticleSet> = (0..ndst).map(|_| ParticleSet::new()).collect();
        for i in 0..self.len() {
            let (id, pos, vel, mass, attrs) = self.get(i);
            let d = f(pos);
            assert!(d < ndst, "classifier out of range");
            out[d].push(id, pos, vel, mass, attrs);
        }
        out
    }

    /// Serialize one named array to little-endian bytes (file order).
    pub fn array_bytes(&self, name: &str) -> Vec<u8> {
        match name {
            "particle_id" => self.id.iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_position_x" => self.pos[0].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_position_y" => self.pos[1].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_position_z" => self.pos[2].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_velocity_x" => self.vel[0].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_velocity_y" => self.vel[1].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_velocity_z" => self.vel[2].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_mass" => self.mass.iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_attr0" => self.attrs[0].iter().flat_map(|v| v.to_le_bytes()).collect(),
            "particle_attr1" => self.attrs[1].iter().flat_map(|v| v.to_le_bytes()).collect(),
            _ => panic!("unknown particle array {name:?}"),
        }
    }

    /// Install one named array from bytes; all arrays must end up with the
    /// same length before the set is used.
    pub fn set_array_bytes(&mut self, name: &str, bytes: &[u8]) {
        fn de_f64(b: &[u8]) -> Vec<f64> {
            b.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        }
        fn de_f32(b: &[u8]) -> Vec<f32> {
            b.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        }
        match name {
            "particle_id" => {
                self.id = bytes
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
            "particle_position_x" => self.pos[0] = de_f64(bytes),
            "particle_position_y" => self.pos[1] = de_f64(bytes),
            "particle_position_z" => self.pos[2] = de_f64(bytes),
            "particle_velocity_x" => self.vel[0] = de_f32(bytes),
            "particle_velocity_y" => self.vel[1] = de_f32(bytes),
            "particle_velocity_z" => self.vel[2] = de_f32(bytes),
            "particle_mass" => self.mass = de_f32(bytes),
            "particle_attr0" => self.attrs[0] = de_f32(bytes),
            "particle_attr1" => self.attrs[1] = de_f32(bytes),
            _ => panic!("unknown particle array {name:?}"),
        }
    }

    /// Check that every array has the same length (call after assembling
    /// from per-array bytes).
    pub fn validate(&self) {
        let n = self.id.len();
        for d in 0..3 {
            assert_eq!(self.pos[d].len(), n);
            assert_eq!(self.vel[d].len(), n);
        }
        assert_eq!(self.mass.len(), n);
        for a in &self.attrs {
            assert_eq!(a.len(), n);
        }
    }

    pub fn total_bytes(&self) -> u64 {
        self.len() as u64 * bytes_per_particle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> ParticleSet {
        let mut p = ParticleSet::new();
        for i in 0..n {
            p.push(
                (n - i) as i64,
                [i as f64 * 0.1, 0.5, 0.9 - i as f64 * 0.01],
                [1.0, 2.0, 3.0],
                0.5,
                [i as f32, -(i as f32)],
            );
        }
        p
    }

    #[test]
    fn push_get_roundtrip() {
        let p = sample(5);
        let (id, pos, vel, mass, attrs) = p.get(2);
        assert_eq!(id, 3);
        assert!((pos[0] - 0.2).abs() < 1e-12);
        assert_eq!(vel, [1.0, 2.0, 3.0]);
        assert_eq!(mass, 0.5);
        assert_eq!(attrs, [2.0, -2.0]);
    }

    #[test]
    fn sort_by_id_reorders_all_arrays() {
        let mut p = sample(5);
        p.sort_by_id();
        assert_eq!(p.id, vec![1, 2, 3, 4, 5]);
        // id 1 was pushed last (i=4): pos x = 0.4, attr0 = 4
        assert!((p.pos[0][0] - 0.4).abs() < 1e-12);
        assert_eq!(p.attrs[0][0], 4.0);
        p.validate();
    }

    #[test]
    fn array_bytes_roundtrip_every_array() {
        let p = sample(7);
        let mut q = ParticleSet::new();
        for (name, width) in PARTICLE_ARRAYS {
            let b = p.array_bytes(name);
            assert_eq!(b.len() as u64, 7 * width);
            q.set_array_bytes(name, &b);
        }
        q.validate();
        assert_eq!(p, q);
    }

    #[test]
    fn partition_by_classifier() {
        let p = sample(10);
        let parts = p.partition_by(2, |pos| usize::from(pos[0] >= 0.45));
        assert_eq!(parts[0].len() + parts[1].len(), 10);
        assert!(parts[0].pos[0].iter().all(|x| *x < 0.45));
        assert!(parts[1].pos[0].iter().all(|x| *x >= 0.45));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample(3);
        let b = sample(2);
        a.extend(&b);
        assert_eq!(a.len(), 5);
        a.validate();
    }

    #[test]
    fn bytes_per_particle_is_56() {
        assert_eq!(bytes_per_particle(), 56);
    }
}
