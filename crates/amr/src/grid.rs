//! Grid patches and the replicated hierarchy metadata.

use crate::array::Array3;
use crate::particles::ParticleSet;

/// The baryon field datasets every grid carries, in their fixed file
/// order (paper §3.1).
pub const BARYON_FIELDS: [&str; 7] = [
    "density",
    "total_energy",
    "velocity_x",
    "velocity_y",
    "velocity_z",
    "temperature",
    "dark_matter",
];

pub const NUM_FIELDS: usize = BARYON_FIELDS.len();

/// An axis-aligned box of cell indices `[lo, hi)` at some level's
/// resolution, ordered (z, y, x).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellBox {
    pub lo: [u64; 3],
    pub hi: [u64; 3],
}

impl CellBox {
    pub fn new(lo: [u64; 3], hi: [u64; 3]) -> CellBox {
        for d in 0..3 {
            assert!(lo[d] <= hi[d], "degenerate box {lo:?}..{hi:?}");
        }
        CellBox { lo, hi }
    }

    pub fn cube(n: u64) -> CellBox {
        CellBox::new([0; 3], [n; 3])
    }

    pub fn size(&self) -> [u64; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    pub fn cells(&self) -> u64 {
        self.size().iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.cells() == 0
    }

    pub fn contains(&self, p: [u64; 3]) -> bool {
        (0..3).all(|d| p[d] >= self.lo[d] && p[d] < self.hi[d])
    }

    pub fn intersect(&self, o: &CellBox) -> Option<CellBox> {
        let lo = std::array::from_fn(|d| self.lo[d].max(o.lo[d]));
        let hi = std::array::from_fn(|d| self.hi[d].min(o.hi[d]));
        (0..3).all(|d| lo[d] < hi[d]).then_some(CellBox { lo, hi })
    }

    /// The same region at the next finer level (refinement factor 2).
    pub fn refined(&self) -> CellBox {
        CellBox {
            lo: self.lo.map(|v| v * 2),
            hi: self.hi.map(|v| v * 2),
        }
    }

    /// Map to normalized domain coordinates [0,1)³ given the level's full
    /// resolution `n` per dimension.
    pub fn frac_lo(&self, n: u64) -> [f64; 3] {
        self.lo.map(|v| v as f64 / n as f64)
    }

    pub fn frac_hi(&self, n: u64) -> [f64; 3] {
        self.hi.map(|v| v as f64 / n as f64)
    }
}

/// One AMR grid patch: a box of cells at some refinement level plus its
/// field and particle data.
#[derive(Clone, Debug, PartialEq)]
pub struct GridPatch {
    pub id: u64,
    pub level: u8,
    /// Cell extents at this level's resolution.
    pub bbox: CellBox,
    /// One array per entry of [`BARYON_FIELDS`].
    pub fields: Vec<Array3>,
    pub particles: ParticleSet,
}

impl GridPatch {
    pub fn new(id: u64, level: u8, bbox: CellBox) -> GridPatch {
        let s = bbox.size();
        let dims = [s[0] as usize, s[1] as usize, s[2] as usize];
        GridPatch {
            id,
            level,
            bbox,
            fields: (0..NUM_FIELDS).map(|_| Array3::zeros(dims)).collect(),
            particles: ParticleSet::new(),
        }
    }

    pub fn dims(&self) -> [usize; 3] {
        let s = self.bbox.size();
        [s[0] as usize, s[1] as usize, s[2] as usize]
    }

    pub fn field(&self, i: usize) -> &Array3 {
        &self.fields[i]
    }

    pub fn field_mut(&mut self, i: usize) -> &mut Array3 {
        &mut self.fields[i]
    }

    pub fn field_by_name(&self, name: &str) -> &Array3 {
        let i = BARYON_FIELDS
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown field {name:?}"));
        &self.fields[i]
    }

    /// Total bytes of field + particle payload (what a dump moves).
    pub fn payload_bytes(&self) -> u64 {
        let field_bytes = self.bbox.cells() * 4 * NUM_FIELDS as u64;
        field_bytes + self.particles.total_bytes()
    }
}

/// Replicated metadata for one grid in the hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct GridMeta {
    pub id: u64,
    pub level: u8,
    pub bbox: CellBox,
    pub parent: Option<u64>,
    /// Which rank stores the grid's data (the hierarchy itself is
    /// replicated on all processors — paper Fig. 3).
    pub owner: usize,
    pub nparticles: u64,
}

/// The grid hierarchy: a tree of metadata replicated everywhere.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Hierarchy {
    pub grids: Vec<GridMeta>,
}

impl Hierarchy {
    pub fn new() -> Hierarchy {
        Hierarchy::default()
    }

    pub fn add(&mut self, meta: GridMeta) {
        debug_assert!(self.find(meta.id).is_none(), "duplicate grid id");
        self.grids.push(meta);
    }

    pub fn find(&self, id: u64) -> Option<&GridMeta> {
        self.grids.iter().find(|g| g.id == id)
    }

    pub fn at_level(&self, level: u8) -> impl Iterator<Item = &GridMeta> {
        self.grids.iter().filter(move |g| g.level == level)
    }

    pub fn children_of(&self, id: u64) -> impl Iterator<Item = &GridMeta> {
        self.grids.iter().filter(move |g| g.parent == Some(id))
    }

    pub fn max_level(&self) -> u8 {
        self.grids.iter().map(|g| g.level).max().unwrap_or(0)
    }

    pub fn owned_by(&self, rank: usize) -> impl Iterator<Item = &GridMeta> {
        self.grids.iter().filter(move |g| g.owner == rank)
    }

    pub fn total_cells(&self) -> u64 {
        self.grids.iter().map(|g| g.bbox.cells()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cellbox_geometry() {
        let b = CellBox::new([0, 2, 4], [4, 6, 8]);
        assert_eq!(b.size(), [4, 4, 4]);
        assert_eq!(b.cells(), 64);
        assert!(b.contains([0, 2, 4]));
        assert!(!b.contains([4, 2, 4]));
        let c = CellBox::new([2, 0, 0], [6, 4, 6]);
        let i = b.intersect(&c).unwrap();
        assert_eq!(i, CellBox::new([2, 2, 4], [4, 4, 6]));
        assert!(b
            .intersect(&CellBox::new([10, 10, 10], [11, 11, 11]))
            .is_none());
    }

    #[test]
    fn refined_doubles() {
        let b = CellBox::new([1, 2, 3], [2, 4, 6]);
        assert_eq!(b.refined(), CellBox::new([2, 4, 6], [4, 8, 12]));
    }

    #[test]
    fn patch_has_all_fields() {
        let p = GridPatch::new(0, 0, CellBox::cube(8));
        assert_eq!(p.fields.len(), 7);
        assert_eq!(p.dims(), [8, 8, 8]);
        assert_eq!(p.payload_bytes(), 8 * 8 * 8 * 4 * 7);
        assert_eq!(p.field_by_name("density").len(), 512);
    }

    #[test]
    fn hierarchy_queries() {
        let mut h = Hierarchy::new();
        h.add(GridMeta {
            id: 0,
            level: 0,
            bbox: CellBox::cube(8),
            parent: None,
            owner: 0,
            nparticles: 10,
        });
        h.add(GridMeta {
            id: 1,
            level: 1,
            bbox: CellBox::new([2, 2, 2], [6, 6, 6]),
            parent: Some(0),
            owner: 1,
            nparticles: 4,
        });
        assert_eq!(h.at_level(1).count(), 1);
        assert_eq!(h.children_of(0).next().unwrap().id, 1);
        assert_eq!(h.max_level(), 1);
        assert_eq!(h.owned_by(1).count(), 1);
        assert_eq!(h.total_cells(), 512 + 64);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn bad_box_panics() {
        CellBox::new([1, 0, 0], [0, 1, 1]);
    }
}
