//! Grid-to-processor assignment (the load-balance optimization of
//! Lan/Taylor/Bryan the paper cites): longest-processing-time (LPT)
//! greedy placement by estimated work.

/// Assign `work[i]` items to `nranks` bins; returns the owner of each
/// item. Deterministic: ties broken by lower rank, items by index.
pub fn lpt_assign(work: &[u64], nranks: usize) -> Vec<usize> {
    assert!(nranks > 0);
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((work[i], std::cmp::Reverse(i))));
    let mut load = vec![0u64; nranks];
    let mut owner = vec![0usize; work.len()];
    for i in order {
        let r = (0..nranks).min_by_key(|&r| (load[r], r)).unwrap();
        owner[i] = r;
        load[r] += work[i];
    }
    owner
}

/// Maximum over minimum bin load (1.0 = perfectly balanced).
pub fn imbalance(work: &[u64], owner: &[usize], nranks: usize) -> f64 {
    let mut load = vec![0u64; nranks];
    for (w, o) in work.iter().zip(owner) {
        load[*o] += w;
    }
    let max = *load.iter().max().unwrap_or(&0) as f64;
    let avg = load.iter().sum::<u64>() as f64 / nranks as f64;
    if avg == 0.0 {
        1.0
    } else {
        max / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_work_spreads_evenly() {
        let work = vec![10u64; 8];
        let owner = lpt_assign(&work, 4);
        let mut counts = [0; 4];
        for o in &owner {
            counts[*o] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
        assert!((imbalance(&work, &owner, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_beats_naive_on_skewed_work() {
        let work = vec![100, 1, 1, 1, 1, 1, 1, 1];
        let owner = lpt_assign(&work, 2);
        // The big item is alone; the small ones share the other bin.
        let big_owner = owner[0];
        assert!(owner[1..].iter().all(|o| *o != big_owner));
    }

    #[test]
    fn more_ranks_than_items() {
        let owner = lpt_assign(&[5, 3], 8);
        assert_eq!(owner.len(), 2);
        assert_ne!(owner[0], owner[1]);
    }

    #[test]
    fn deterministic() {
        let work: Vec<u64> = (0..50).map(|i| (i * 37) % 17 + 1).collect();
        assert_eq!(lpt_assign(&work, 7), lpt_assign(&work, 7));
    }

    #[test]
    fn empty_work() {
        assert!(lpt_assign(&[], 3).is_empty());
        assert_eq!(imbalance(&[], &[], 3), 1.0);
    }
}
