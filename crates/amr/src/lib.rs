//! `amrio-amr` — the structured adaptive-mesh-refinement substrate:
//! dense 3-D field arrays, particle sets, grid patches and the replicated
//! hierarchy, `(Block, Block, Block)` domain decomposition,
//! Berger–Rigoutsos-style refinement clustering, LPT load balancing, and
//! a toy clustering solver that drives adaptive, irregular refinement.

#![forbid(unsafe_code)]

pub mod array;
pub mod balance;
pub mod decomp;
pub mod grid;
pub mod particles;
pub mod refine;
pub mod solver;

pub use array::Array3;
pub use balance::{imbalance, lpt_assign};
pub use decomp::{block_bounds, factor3, BlockDecomp};
pub use grid::{CellBox, GridMeta, GridPatch, Hierarchy, BARYON_FIELDS, NUM_FIELDS};
pub use particles::{bytes_per_particle, ParticleSet, NUM_ATTRS, PARTICLE_ARRAYS};
pub use refine::{cluster, ClusterParams};
