//! Dense 3-D arrays in the layout ENZO's files use: row-major with x the
//! fastest-varying dimension (paper Fig. 5), indexed `(z, y, x)`.

/// A dense 3-D array of `f32` cell data.
#[derive(Clone, Debug, PartialEq)]
pub struct Array3 {
    dims: [usize; 3], // (nz, ny, nx)
    data: Vec<f32>,
}

impl Array3 {
    pub fn zeros(dims: [usize; 3]) -> Array3 {
        Array3 {
            dims,
            data: vec![0.0; dims[0] * dims[1] * dims[2]],
        }
    }

    pub fn from_fn(dims: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f32) -> Array3 {
        let mut a = Array3::zeros(dims);
        for z in 0..dims[0] {
            for y in 0..dims[1] {
                for x in 0..dims[2] {
                    let v = f(z, y, x);
                    a.set(z, y, x, v);
                }
            }
        }
        a
    }

    pub fn from_vec(dims: [usize; 3], data: Vec<f32>) -> Array3 {
        assert_eq!(data.len(), dims[0] * dims[1] * dims[2]);
        Array3 { dims, data }
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(z < self.dims[0] && y < self.dims[1] && x < self.dims[2]);
        (z * self.dims[1] + y) * self.dims[2] + x
    }

    #[inline]
    pub fn get(&self, z: usize, y: usize, x: usize) -> f32 {
        self.data[self.idx(z, y, x)]
    }

    #[inline]
    pub fn set(&mut self, z: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(z, y, x);
        self.data[i] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Serialize to little-endian bytes (the on-file representation).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    pub fn from_bytes(dims: [usize; 3], bytes: &[u8]) -> Array3 {
        assert_eq!(bytes.len(), dims[0] * dims[1] * dims[2] * 4);
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Array3 { dims, data }
    }

    /// Extract the packed subarray `[start, start+size)` (row-major).
    pub fn extract(&self, start: [usize; 3], size: [usize; 3]) -> Array3 {
        let mut out = Array3::zeros(size);
        for z in 0..size[0] {
            for y in 0..size[1] {
                let src0 = self.idx(start[0] + z, start[1] + y, start[2]);
                let dst0 = (z * size[1] + y) * size[2];
                out.data[dst0..dst0 + size[2]].copy_from_slice(&self.data[src0..src0 + size[2]]);
            }
        }
        out
    }

    /// Write `sub` into this array at `start`.
    pub fn insert(&mut self, start: [usize; 3], sub: &Array3) {
        let size = sub.dims;
        for z in 0..size[0] {
            for y in 0..size[1] {
                let dst0 = self.idx(start[0] + z, start[1] + y, start[2]);
                let src0 = (z * size[1] + y) * size[2];
                self.data[dst0..dst0 + size[2]].copy_from_slice(&sub.data[src0..src0 + size[2]]);
            }
        }
    }

    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    pub fn sum(&self) -> f64 {
        self.data.iter().map(|v| *v as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_is_x_fastest() {
        let a = Array3::from_fn([2, 3, 4], |z, y, x| (z * 100 + y * 10 + x) as f32);
        assert_eq!(a.as_slice()[0], 0.0);
        assert_eq!(a.as_slice()[1], 1.0); // x moves first
        assert_eq!(a.as_slice()[4], 10.0); // then y
        assert_eq!(a.as_slice()[12], 100.0); // then z
    }

    #[test]
    fn bytes_roundtrip() {
        let a = Array3::from_fn([3, 3, 3], |z, y, x| (z + y + x) as f32 * 0.5);
        let b = Array3::from_bytes([3, 3, 3], &a.to_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let a = Array3::from_fn([4, 4, 4], |z, y, x| (z * 16 + y * 4 + x) as f32);
        let sub = a.extract([1, 2, 0], [2, 2, 4]);
        assert_eq!(sub.get(0, 0, 0), a.get(1, 2, 0));
        assert_eq!(sub.get(1, 1, 3), a.get(2, 3, 3));
        let mut b = Array3::zeros([4, 4, 4]);
        b.insert([1, 2, 0], &sub);
        assert_eq!(b.get(2, 3, 3), a.get(2, 3, 3));
        assert_eq!(b.get(0, 0, 0), 0.0);
    }

    #[test]
    fn reductions() {
        let a = Array3::from_fn([2, 2, 2], |z, y, x| (z + y + x) as f32);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.sum(), 12.0);
    }
}
