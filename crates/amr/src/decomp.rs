//! Domain decomposition: the `(Block, Block, Block)` partition of a grid
//! over a 3-D processor mesh (paper Fig. 4) and the processor-mesh
//! factorization.

use crate::grid::CellBox;

/// Factor `p` into a 3-D processor mesh `(pz, py, px)` as close to cubic
/// as possible (largest factors to the slowest dimension).
pub fn factor3(p: usize) -> [u64; 3] {
    assert!(p > 0);
    let mut best = [p as u64, 1, 1];
    let mut best_score = u64::MAX;
    let p64 = p as u64;
    let mut a = 1;
    while a * a * a <= p64 {
        if p64.is_multiple_of(a) {
            let rest = p64 / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let c = rest / b;
                    // score: surface-to-volume proxy — prefer balanced.
                    let score = (c - a) + (c - b);
                    if score < best_score {
                        best_score = score;
                        best = [c, b, a];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Even block bounds: `[start, end)` of block `i` of `p` over `n` cells.
pub fn block_bounds(n: u64, p: u64, i: u64) -> (u64, u64) {
    assert!(i < p);
    let base = n / p;
    let rem = n % p;
    let start = i * base + i.min(rem);
    let len = base + u64::from(i < rem);
    (start, start + len)
}

/// A `(Block, Block, Block)` decomposition of a box over `p` ranks.
#[derive(Clone, Debug)]
pub struct BlockDecomp {
    pub mesh: [u64; 3],
    pub bbox: CellBox,
}

impl BlockDecomp {
    pub fn new(bbox: CellBox, nranks: usize) -> BlockDecomp {
        BlockDecomp {
            mesh: factor3(nranks),
            bbox,
        }
    }

    pub fn nranks(&self) -> usize {
        (self.mesh[0] * self.mesh[1] * self.mesh[2]) as usize
    }

    /// Rank index -> mesh coordinates (z, y, x).
    pub fn coords(&self, rank: usize) -> [u64; 3] {
        let r = rank as u64;
        [
            r / (self.mesh[1] * self.mesh[2]),
            (r / self.mesh[2]) % self.mesh[1],
            r % self.mesh[2],
        ]
    }

    /// The sub-box of `bbox` owned by `rank`.
    pub fn slab(&self, rank: usize) -> CellBox {
        let c = self.coords(rank);
        let size = self.bbox.size();
        let mut lo = [0u64; 3];
        let mut hi = [0u64; 3];
        for d in 0..3 {
            let (s, e) = block_bounds(size[d], self.mesh[d], c[d]);
            lo[d] = self.bbox.lo[d] + s;
            hi[d] = self.bbox.lo[d] + e;
        }
        CellBox::new(lo, hi)
    }

    /// Which rank owns a cell (must lie inside `bbox`).
    pub fn owner_of_cell(&self, cell: [u64; 3]) -> usize {
        let size = self.bbox.size();
        let mut coord = [0u64; 3];
        for d in 0..3 {
            let rel = cell[d] - self.bbox.lo[d];
            // Invert block_bounds: scan is fine for small meshes.
            let mut c = 0;
            while block_bounds(size[d], self.mesh[d], c).1 <= rel {
                c += 1;
            }
            coord[d] = c;
        }
        ((coord[0] * self.mesh[1] + coord[1]) * self.mesh[2] + coord[2]) as usize
    }

    /// Which rank owns a normalized position in [0,1)³ relative to the
    /// full box (used for the irregular particle partition).
    pub fn owner_of_pos(&self, pos: [f64; 3], level_n: [u64; 3]) -> usize {
        let mut cell = [0u64; 3];
        for d in 0..3 {
            let c = (pos[d] * level_n[d] as f64).floor() as i64;
            cell[d] = c.clamp(self.bbox.lo[d] as i64, self.bbox.hi[d] as i64 - 1) as u64;
        }
        self.owner_of_cell(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor3_balanced() {
        assert_eq!(factor3(8), [2, 2, 2]);
        assert_eq!(factor3(64), [4, 4, 4]);
        assert_eq!(factor3(32), [4, 4, 2]);
        assert_eq!(factor3(1), [1, 1, 1]);
        assert_eq!(factor3(7), [7, 1, 1]);
        let f = factor3(12);
        assert_eq!(f.iter().product::<u64>(), 12);
    }

    #[test]
    fn block_bounds_cover_exactly() {
        for (n, p) in [(64u64, 4u64), (10, 3), (7, 7), (100, 6)] {
            let mut prev = 0;
            for i in 0..p {
                let (s, e) = block_bounds(n, p, i);
                assert_eq!(s, prev);
                assert!(e >= s);
                prev = e;
            }
            assert_eq!(prev, n);
        }
    }

    #[test]
    fn slabs_partition_the_box() {
        let d = BlockDecomp::new(CellBox::cube(64), 8);
        let total: u64 = (0..8).map(|r| d.slab(r).cells()).sum();
        assert_eq!(total, 64 * 64 * 64);
        // Slabs are disjoint.
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert!(d.slab(a).intersect(&d.slab(b)).is_none());
            }
        }
    }

    #[test]
    fn owner_matches_slab() {
        let d = BlockDecomp::new(CellBox::cube(16), 8);
        for r in 0..8 {
            let s = d.slab(r);
            assert_eq!(d.owner_of_cell(s.lo), r);
            let last = [s.hi[0] - 1, s.hi[1] - 1, s.hi[2] - 1];
            assert_eq!(d.owner_of_cell(last), r);
        }
    }

    #[test]
    fn position_owner_consistent_with_cell_owner() {
        let d = BlockDecomp::new(CellBox::cube(16), 4);
        let n = [16, 16, 16];
        for &(x, y, z) in &[(0.1, 0.2, 0.3), (0.9, 0.9, 0.05), (0.5, 0.5, 0.5)] {
            let pos = [z, y, x];
            let cell = [(z * 16.0) as u64, (y * 16.0) as u64, (x * 16.0) as u64];
            assert_eq!(d.owner_of_pos(pos, n), d.owner_of_cell(cell));
        }
    }

    #[test]
    fn non_cubic_box_decomposes() {
        let d = BlockDecomp::new(CellBox::new([0, 0, 0], [8, 16, 32]), 4);
        let total: u64 = (0..4).map(|r| d.slab(r).cells()).sum();
        assert_eq!(total, 8 * 16 * 32);
    }
}
