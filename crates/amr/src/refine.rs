//! Flagging and clustering: turning cells that need resolution into
//! rectangular subgrids, Berger–Rigoutsos style (the clustering algorithm
//! behind structured AMR hierarchies like ENZO's).

use crate::grid::CellBox;
use std::collections::HashSet;

/// Tuning for the clusterer.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Minimum fraction of flagged cells a box must contain.
    pub min_efficiency: f64,
    /// Boxes are not split below this edge length.
    pub min_width: u64,
    /// Hard cap on recursion (safety).
    pub max_boxes: usize,
}

impl Default for ClusterParams {
    fn default() -> ClusterParams {
        ClusterParams {
            min_efficiency: 0.7,
            min_width: 4,
            max_boxes: 256,
        }
    }
}

/// Cluster flagged cells into boxes covering all of them.
///
/// Classic Berger–Rigoutsos: shrink to the bounding box; accept if
/// efficient enough or too small to split; otherwise split at a signature
/// hole, else at the strongest Laplacian inflection, else in half along
/// the longest axis; recurse on both halves.
pub fn cluster(flags: &[[u64; 3]], params: &ClusterParams) -> Vec<CellBox> {
    if flags.is_empty() {
        return Vec::new();
    }
    let set: HashSet<[u64; 3]> = flags.iter().copied().collect();
    let mut out = Vec::new();
    let mut work = vec![bounding_box(flags)];
    while let Some(region) = work.pop() {
        let inside = flags_in(&set, &region);
        if inside.is_empty() {
            continue;
        }
        let bbox = bounding_box(&inside);
        let eff = inside.len() as f64 / bbox.cells() as f64;
        let size = bbox.size();
        let splittable = size.iter().any(|s| *s >= 2 * params.min_width);
        // Budget: accepted boxes + regions still queued must stay in cap.
        let budget_left = out.len() + work.len() + 1 < params.max_boxes;
        if eff >= params.min_efficiency || !splittable || !budget_left {
            out.push(bbox);
            continue;
        }
        match choose_cut(&inside, &bbox, params.min_width) {
            Some((dim, at)) => {
                let mut hi1 = bbox.hi;
                hi1[dim] = at;
                let mut lo2 = bbox.lo;
                lo2[dim] = at;
                work.push(CellBox::new(bbox.lo, hi1));
                work.push(CellBox::new(lo2, bbox.hi));
            }
            None => out.push(bbox),
        }
    }
    out
}

fn bounding_box(flags: &[[u64; 3]]) -> CellBox {
    let mut lo = [u64::MAX; 3];
    let mut hi = [0u64; 3];
    for f in flags {
        for d in 0..3 {
            lo[d] = lo[d].min(f[d]);
            hi[d] = hi[d].max(f[d] + 1);
        }
    }
    CellBox::new(lo, hi)
}

fn flags_in(set: &HashSet<[u64; 3]>, b: &CellBox) -> Vec<[u64; 3]> {
    // Iterate whichever is smaller: the box or the set.
    if b.cells() <= set.len() as u64 * 4 {
        let mut v = Vec::new();
        for z in b.lo[0]..b.hi[0] {
            for y in b.lo[1]..b.hi[1] {
                for x in b.lo[2]..b.hi[2] {
                    if set.contains(&[z, y, x]) {
                        v.push([z, y, x]);
                    }
                }
            }
        }
        v
    } else {
        set.iter().filter(|f| b.contains(**f)).copied().collect()
    }
}

/// Pick a cut plane: prefer signature holes, then the largest inflection
/// of the signature's second difference, then the midpoint of the longest
/// splittable axis.
fn choose_cut(flags: &[[u64; 3]], bbox: &CellBox, min_width: u64) -> Option<(usize, u64)> {
    let size = bbox.size();
    let mut best_hole: Option<(usize, u64)> = None;
    let mut best_inflect: Option<(usize, u64, i64)> = None;

    for dim in 0..3 {
        if size[dim] < 2 * min_width {
            continue;
        }
        let n = size[dim] as usize;
        let mut sig = vec![0i64; n];
        for f in flags {
            sig[(f[dim] - bbox.lo[dim]) as usize] += 1;
        }
        // Holes (zero planes), away from the edges by min_width.
        for i in min_width..(size[dim] - min_width + 1) {
            let idx = i as usize;
            if idx < n && sig[idx] == 0 && best_hole.is_none() {
                best_hole = Some((dim, bbox.lo[dim] + i));
            }
        }
        // Inflection points of the second difference.
        for i in (min_width as usize)..(n.saturating_sub(min_width as usize)) {
            if i + 1 >= n || i < 1 {
                continue;
            }
            let lap = |j: usize| -> i64 { sig[j + 1] - 2 * sig[j] + sig[j - 1] };
            if i + 1 < n - 1 {
                let d = lap(i) - lap(i + 1);
                let mag = d.abs();
                if lap(i).signum() != lap(i + 1).signum()
                    && best_inflect.map(|(_, _, m)| mag > m).unwrap_or(true)
                {
                    best_inflect = Some((dim, bbox.lo[dim] + i as u64 + 1, mag));
                }
            }
        }
    }
    if let Some(h) = best_hole {
        return Some(h);
    }
    if let Some((d, at, _)) = best_inflect {
        return Some((d, at));
    }
    // Fall back: halve the longest splittable dimension.
    let dim = (0..3)
        .filter(|d| size[*d] >= 2 * min_width)
        .max_by_key(|d| size[*d])?;
    Some((dim, bbox.lo[dim] + size[dim] / 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(boxes: &[CellBox], flags: &[[u64; 3]]) -> bool {
        flags.iter().all(|f| boxes.iter().any(|b| b.contains(*f)))
    }

    #[test]
    fn single_blob_single_box() {
        let mut flags = Vec::new();
        for z in 4..8 {
            for y in 4..8 {
                for x in 4..8 {
                    flags.push([z, y, x]);
                }
            }
        }
        let boxes = cluster(&flags, &ClusterParams::default());
        assert_eq!(boxes, vec![CellBox::new([4, 4, 4], [8, 8, 8])]);
    }

    #[test]
    fn two_separated_blobs_split_at_hole() {
        let mut flags = Vec::new();
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    flags.push([z, y, x]);
                    flags.push([z + 20, y, x]);
                }
            }
        }
        let boxes = cluster(&flags, &ClusterParams::default());
        assert_eq!(boxes.len(), 2, "{boxes:?}");
        assert!(covers(&boxes, &flags));
        // Each box is tight around its blob.
        let total: u64 = boxes.iter().map(|b| b.cells()).sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn diagonal_flags_get_reasonable_efficiency() {
        let flags: Vec<[u64; 3]> = (0..32).map(|i| [i, i, i]).collect();
        let params = ClusterParams {
            min_efficiency: 0.02,
            ..Default::default()
        };
        let boxes = cluster(&flags, &params);
        assert!(covers(&boxes, &flags));
        // With a high efficiency demand the diagonal gets chopped up.
        let tight = cluster(
            &flags,
            &ClusterParams {
                min_efficiency: 0.5,
                min_width: 2,
                max_boxes: 64,
            },
        );
        assert!(tight.len() > boxes.len());
        assert!(covers(&tight, &flags));
    }

    #[test]
    fn empty_flags_no_boxes() {
        assert!(cluster(&[], &ClusterParams::default()).is_empty());
    }

    #[test]
    fn max_boxes_is_respected() {
        let flags: Vec<[u64; 3]> = (0..64)
            .map(|i| [i * 7 % 61, i * 13 % 61, i * 29 % 61])
            .collect();
        let params = ClusterParams {
            min_efficiency: 0.99,
            min_width: 1,
            max_boxes: 8,
        };
        let boxes = cluster(&flags, &params);
        assert!(boxes.len() <= 8, "{}", boxes.len());
        assert!(covers(&boxes, &flags));
    }

    #[test]
    fn coverage_is_invariant_under_params() {
        let flags: Vec<[u64; 3]> = (0..100)
            .map(|i| [(i * 37) % 50, (i * 11) % 50, (i * 53) % 50])
            .collect();
        for eff in [0.1, 0.5, 0.9] {
            let boxes = cluster(
                &flags,
                &ClusterParams {
                    min_efficiency: eff,
                    min_width: 2,
                    max_boxes: 128,
                },
            );
            assert!(covers(&boxes, &flags), "eff={eff}");
        }
    }
}
