//! Lock-free service counters and log2-bucketed latency histograms,
//! exposed through `GET /stats`.

use crate::json::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A latency histogram with power-of-two microsecond buckets: bucket
/// `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 includes 0).
/// Recording is a single relaxed atomic increment; quantiles are
/// approximate (upper bucket bound), which is plenty for a p50/p99
/// service dashboard.
pub struct Histogram {
    buckets: [AtomicU64; Histogram::NBUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// 2^39 µs ≈ 6.4 days — everything above saturates the last bucket.
    const NBUCKETS: usize = 40;

    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    pub fn record_us(&self, us: u64) {
        let b = (63 - (us | 1).leading_zeros()) as usize;
        let b = b.min(Histogram::NBUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile in µs: the upper bound of the bucket holding
    /// the q-th sample. `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(u64::MAX)
    }

    pub fn to_json(&self) -> Json {
        let n = self.count();
        let mean_us = if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        };
        Json::Obj(vec![
            ("count".into(), Json::U64(n)),
            ("mean_us".into(), Json::F64(mean_us)),
            (
                "p50_us".into(),
                Json::U64(self.quantile_us(0.50).unwrap_or(0)),
            ),
            (
                "p99_us".into(),
                Json::U64(self.quantile_us(0.99).unwrap_or(0)),
            ),
            (
                "max_bucket_us".into(),
                Json::U64(self.quantile_us(1.0).unwrap_or(0)),
            ),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// All service counters. One instance per server, shared by workers.
pub struct ServeStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub coalesced: AtomicU64,
    pub collisions: AtomicU64,
    pub rejected: AtomicU64,
    pub errors: AtomicU64,
    pub queue_full: AtomicU64,
    /// Connections accepted and queued, minus completed — the live
    /// queue depth plus in-service count.
    pub in_system: AtomicI64,
    pub hit_latency: Histogram,
    pub miss_latency: Histogram,
    pub coalesced_latency: Histogram,
}

impl ServeStats {
    pub fn new() -> ServeStats {
        ServeStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            in_system: AtomicI64::new(0),
            hit_latency: Histogram::new(),
            miss_latency: Histogram::new(),
            coalesced_latency: Histogram::new(),
        }
    }

    pub fn to_json(&self, queue_depth: usize, cache_entries: usize) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::U64(self.hits.load(Ordering::Relaxed))),
            (
                "misses".into(),
                Json::U64(self.misses.load(Ordering::Relaxed)),
            ),
            (
                "coalesced".into(),
                Json::U64(self.coalesced.load(Ordering::Relaxed)),
            ),
            (
                "collisions".into(),
                Json::U64(self.collisions.load(Ordering::Relaxed)),
            ),
            (
                "rejected".into(),
                Json::U64(self.rejected.load(Ordering::Relaxed)),
            ),
            (
                "errors".into(),
                Json::U64(self.errors.load(Ordering::Relaxed)),
            ),
            (
                "queue_full".into(),
                Json::U64(self.queue_full.load(Ordering::Relaxed)),
            ),
            ("queue_depth".into(), Json::U64(queue_depth as u64)),
            (
                "in_system".into(),
                Json::U64(self.in_system.load(Ordering::Relaxed).max(0) as u64),
            ),
            ("cache_entries".into(), Json::U64(cache_entries as u64)),
            ("hit_latency".into(), self.hit_latency.to_json()),
            ("miss_latency".into(), self.miss_latency.to_json()),
            ("coalesced_latency".into(), self.coalesced_latency.to_json()),
        ])
    }
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile_us(0.5).unwrap();
        assert!((2..=8).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99).unwrap();
        assert!(p99 >= 100_000, "p99 {p99} must cover the slowest sample");
    }

    #[test]
    fn histogram_handles_zero_and_huge() {
        let h = Histogram::new();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0).is_some());
    }
}
