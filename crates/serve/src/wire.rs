//! The wire format: [`ExperimentSpec`] ↔ JSON, and report types →
//! JSON.
//!
//! Decoding is **strict**: unknown fields are rejected. The canonical
//! digest is defined over the spec's full field set, so silently
//! dropping a field a client believed was significant would let two
//! *different* intended experiments collide on one cache entry.
//! Field *order* is free — decoding normalizes any ordering onto the
//! same `ExperimentSpec`, hence the same canonical digest.
//!
//! 64-bit digests cross the wire as `"0x%016x"` strings: every JSON
//! consumer can compare them byte-for-byte and none can round them
//! through a double.

use crate::json::Json;
use amrio_check::{CheckMode, CheckReport};
use amrio_enzo::driver::{RecoveryOutcome, RunOutcome, RunReport};
use amrio_enzo::spec::{
    check_mode_str, ExperimentSpec, FaultEntry, FaultSpec, PlatformId, RetrySpec, SpecError,
    StrategyId,
};
use amrio_fault::ResilienceReport;
use amrio_mpiio::{Advisory, Hints};
use amrio_tune::TuneConfig;
use std::fmt;

/// A document that parsed as JSON but does not describe a spec.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// Field present but with the wrong JSON type / out of range.
    BadField {
        field: &'static str,
        expected: &'static str,
    },
    /// Required field absent.
    MissingField { field: &'static str },
    /// Field name not part of the schema (see module docs for why this
    /// is fatal rather than ignored).
    UnknownField { field: String },
    /// Structurally fine, semantically invalid.
    Spec(SpecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadField { field, expected } => {
                write!(f, "field {field:?} must be {expected}")
            }
            WireError::MissingField { field } => write!(f, "missing required field {field:?}"),
            WireError::UnknownField { field } => write!(f, "unknown field {field:?}"),
            WireError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<SpecError> for WireError {
    fn from(e: SpecError) -> WireError {
        WireError::Spec(e)
    }
}

/// Format a digest for the wire.
pub fn hex_digest(d: u64) -> String {
    format!("0x{d:016x}")
}

// ---------------------------------------------------------------------
// Spec → JSON
// ---------------------------------------------------------------------

/// Encode a spec. Optional fields that are `None` are omitted (the
/// decoder restores them as `None`), so the document is minimal.
pub fn spec_to_json(s: &ExperimentSpec) -> Json {
    let mut o: Vec<(String, Json)> = vec![
        ("platform".into(), Json::str(s.platform.as_str())),
        ("strategy".into(), Json::str(s.strategy.as_str())),
        ("root_n".into(), Json::U64(s.root_n)),
        ("nranks".into(), Json::U64(s.nranks as u64)),
        ("cycles".into(), Json::U64(s.cycles as u64)),
        ("max_level".into(), Json::U64(s.max_level as u64)),
        (
            "refine_threshold".into(),
            Json::F64(s.refine_threshold as f64),
        ),
        ("seed".into(), Json::U64(s.seed)),
        ("particle_fraction".into(), Json::F64(s.particle_fraction)),
        ("check".into(), Json::str(check_mode_str(s.check))),
        ("probe".into(), Json::Bool(s.probe)),
    ];
    if let Some(k) = s.dump_every {
        o.push(("dump_every".into(), Json::U64(k as u64)));
    }
    if let Some(f) = &s.faults {
        o.push(("faults".into(), faults_to_json(f)));
    }
    if let Some(r) = &s.retry {
        o.push(("retry".into(), retry_to_json(r)));
    }
    if let Some(a) = &s.advisory {
        o.push(("advisory".into(), advisory_to_json(a)));
    }
    Json::Obj(o)
}

fn faults_to_json(f: &FaultSpec) -> Json {
    let mut o: Vec<(String, Json)> = Vec::new();
    if let Some(n) = f.server_count {
        o.push(("server_count".into(), Json::U64(n as u64)));
    }
    o.push((
        "entries".into(),
        Json::Arr(f.entries.iter().map(fault_entry_to_json).collect()),
    ));
    Json::Obj(o)
}

fn fault_entry_to_json(e: &FaultEntry) -> Json {
    let kv = |k: &str, v: Json| (k.to_string(), v);
    match *e {
        FaultEntry::Crash { at_ns } => Json::Obj(vec![
            kv("kind", Json::str("crash")),
            kv("at_ns", Json::U64(at_ns)),
        ]),
        FaultEntry::ServerSlowdown {
            server,
            from_ns,
            until_ns,
            factor,
        } => Json::Obj(vec![
            kv("kind", Json::str("server_slowdown")),
            kv("server", Json::U64(server as u64)),
            kv("from_ns", Json::U64(from_ns)),
            kv("until_ns", Json::U64(until_ns)),
            kv("factor", Json::F64(factor)),
        ]),
        FaultEntry::ServerStall {
            server,
            from_ns,
            until_ns,
        } => Json::Obj(vec![
            kv("kind", Json::str("server_stall")),
            kv("server", Json::U64(server as u64)),
            kv("from_ns", Json::U64(from_ns)),
            kv("until_ns", Json::U64(until_ns)),
        ]),
        FaultEntry::TransientErrors {
            server,
            from_ns,
            until_ns,
            budget,
        } => Json::Obj(vec![
            kv("kind", Json::str("transient_errors")),
            kv("server", Json::U64(server as u64)),
            kv("from_ns", Json::U64(from_ns)),
            kv("until_ns", Json::U64(until_ns)),
            kv("budget", Json::U64(budget)),
        ]),
        FaultEntry::ServerFailure { server, at_ns } => Json::Obj(vec![
            kv("kind", Json::str("server_failure")),
            kv("server", Json::U64(server as u64)),
            kv("at_ns", Json::U64(at_ns)),
        ]),
        FaultEntry::MessageDrops {
            src,
            dst,
            from_ns,
            until_ns,
            retransmit_ns,
            budget,
        } => Json::Obj(vec![
            kv("kind", Json::str("message_drops")),
            kv("src", opt_u64(src.map(|v| v as u64))),
            kv("dst", opt_u64(dst.map(|v| v as u64))),
            kv("from_ns", Json::U64(from_ns)),
            kv("until_ns", Json::U64(until_ns)),
            kv("retransmit_ns", Json::U64(retransmit_ns)),
            kv("budget", Json::U64(budget)),
        ]),
        FaultEntry::MessageDelays {
            src,
            dst,
            from_ns,
            until_ns,
            extra_ns,
            budget,
        } => Json::Obj(vec![
            kv("kind", Json::str("message_delays")),
            kv("src", opt_u64(src.map(|v| v as u64))),
            kv("dst", opt_u64(dst.map(|v| v as u64))),
            kv("from_ns", Json::U64(from_ns)),
            kv("until_ns", Json::U64(until_ns)),
            kv("extra_ns", Json::U64(extra_ns)),
            kv("budget", Json::U64(budget)),
        ]),
        FaultEntry::Straggler {
            rank,
            from_ns,
            until_ns,
            factor,
        } => Json::Obj(vec![
            kv("kind", Json::str("straggler")),
            kv("rank", Json::U64(rank as u64)),
            kv("from_ns", Json::U64(from_ns)),
            kv("until_ns", Json::U64(until_ns)),
            kv("factor", Json::F64(factor)),
        ]),
    }
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(v) => Json::U64(v),
        None => Json::Null,
    }
}

fn retry_to_json(r: &RetrySpec) -> Json {
    let mut o: Vec<(String, Json)> = vec![
        ("max_retries".into(), Json::U64(r.max_retries as u64)),
        ("backoff_ns".into(), Json::U64(r.backoff_ns)),
    ];
    if let Some(t) = r.op_timeout_ns {
        o.push(("op_timeout_ns".into(), Json::U64(t)));
    }
    o.push(("failover".into(), Json::Bool(r.failover)));
    Json::Obj(o)
}

fn advisory_to_json(a: &Advisory) -> Json {
    let mut o: Vec<(String, Json)> = Vec::new();
    if let Some(h) = &a.hints {
        o.push(("hints".into(), hints_to_json(h)));
    }
    if let Some(w) = a.write_behind {
        o.push(("write_behind".into(), Json::U64(w as u64)));
    }
    if let Some(s) = a.app_stripe {
        o.push(("app_stripe".into(), Json::U64(s)));
    }
    Json::Obj(o)
}

pub fn hints_to_json(h: &Hints) -> Json {
    Json::Obj(vec![
        ("cb_nodes".into(), opt_u64(h.cb_nodes.map(|v| v as u64))),
        ("cb_buffer_size".into(), Json::U64(h.cb_buffer_size)),
        ("ds_read".into(), Json::Bool(h.ds_read)),
        ("ds_write".into(), Json::Bool(h.ds_write)),
        ("sieve_buffer_size".into(), Json::U64(h.sieve_buffer_size)),
        (
            "align_file_domains".into(),
            Json::Bool(h.align_file_domains),
        ),
        ("cb_write".into(), Json::Bool(h.cb_write)),
        ("cb_read".into(), Json::Bool(h.cb_read)),
    ])
}

// ---------------------------------------------------------------------
// JSON → Spec
// ---------------------------------------------------------------------

/// A strict object reader: typed field accessors plus an exhaustiveness
/// check (`finish` fails on any field no accessor consumed).
struct ObjReader<'a> {
    fields: &'a [(String, Json)],
    seen: Vec<&'a str>,
}

impl<'a> ObjReader<'a> {
    fn new(v: &'a Json, what: &'static str) -> Result<ObjReader<'a>, WireError> {
        match v {
            Json::Obj(fields) => Ok(ObjReader {
                fields,
                seen: Vec::new(),
            }),
            _ => Err(WireError::BadField {
                field: what,
                expected: "an object",
            }),
        }
    }

    fn take(&mut self, key: &'static str) -> Option<&'a Json> {
        let v = self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        if v.is_some() {
            self.seen.push(key);
        }
        v
    }

    fn req(&mut self, key: &'static str) -> Result<&'a Json, WireError> {
        self.take(key).ok_or(WireError::MissingField { field: key })
    }

    fn u64(&mut self, key: &'static str) -> Result<u64, WireError> {
        as_u64(self.req(key)?, key)
    }

    fn opt_u64(&mut self, key: &'static str) -> Result<Option<u64>, WireError> {
        match self.take(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => as_u64(v, key).map(Some),
        }
    }

    fn f64(&mut self, key: &'static str) -> Result<f64, WireError> {
        let v = self.req(key)?;
        v.as_f64().ok_or(WireError::BadField {
            field: key,
            expected: "a number",
        })
    }

    fn bool(&mut self, key: &'static str, default: bool) -> Result<bool, WireError> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => v.as_bool().ok_or(WireError::BadField {
                field: key,
                expected: "a boolean",
            }),
        }
    }

    fn str(&mut self, key: &'static str) -> Result<&'a str, WireError> {
        self.req(key)?.as_str().ok_or(WireError::BadField {
            field: key,
            expected: "a string",
        })
    }

    /// Reject any field not consumed by an accessor.
    fn finish(self) -> Result<(), WireError> {
        for (k, _) in self.fields {
            if !self.seen.contains(&k.as_str()) {
                return Err(WireError::UnknownField { field: k.clone() });
            }
        }
        Ok(())
    }
}

fn as_u64(v: &Json, field: &'static str) -> Result<u64, WireError> {
    v.as_u64().ok_or(WireError::BadField {
        field,
        expected: "a non-negative integer",
    })
}

/// Decode a spec document (any field order; unknown fields rejected;
/// missing optionals default exactly as [`ExperimentSpec::new`] does).
pub fn spec_from_json(v: &Json) -> Result<ExperimentSpec, WireError> {
    let mut r = ObjReader::new(v, "spec")?;
    let platform = PlatformId::parse(r.str("platform")?)?;
    let strategy = StrategyId::parse(r.str("strategy")?)?;
    let root_n = r.u64("root_n")?;
    let nranks = r.u64("nranks")? as usize;
    let mut spec = ExperimentSpec::new(platform, strategy, root_n, nranks);
    if let Some(c) = r.opt_u64("cycles")? {
        spec.cycles = clamp_u32("cycles", c)?;
    }
    if let Some(m) = r.opt_u64("max_level")? {
        spec.max_level = u8::try_from(m).map_err(|_| WireError::BadField {
            field: "max_level",
            expected: "a small integer",
        })?;
    }
    if let Some(v) = r.take("refine_threshold") {
        spec.refine_threshold = v.as_f64().ok_or(WireError::BadField {
            field: "refine_threshold",
            expected: "a number",
        })? as f32;
    }
    if let Some(s) = r.opt_u64("seed")? {
        spec.seed = s;
    }
    if let Some(v) = r.take("particle_fraction") {
        spec.particle_fraction = v.as_f64().ok_or(WireError::BadField {
            field: "particle_fraction",
            expected: "a number",
        })?;
    }
    if let Some(v) = r.take("check") {
        spec.check = match v.as_str() {
            Some("off") => CheckMode::Off,
            Some("log") => CheckMode::Log,
            Some("strict") => CheckMode::Strict,
            _ => {
                return Err(WireError::BadField {
                    field: "check",
                    expected: "\"off\", \"log\" or \"strict\"",
                })
            }
        };
    }
    spec.probe = r.bool("probe", false)?;
    spec.dump_every = match r.opt_u64("dump_every")? {
        Some(k) => Some(clamp_u32("dump_every", k)?),
        None => None,
    };
    if let Some(v) = r.take("faults") {
        spec.faults = Some(faults_from_json(v)?);
    }
    if let Some(v) = r.take("retry") {
        spec.retry = Some(retry_from_json(v)?);
    }
    if let Some(v) = r.take("advisory") {
        spec.advisory = Some(advisory_from_json(v)?);
    }
    r.finish()?;
    Ok(spec)
}

fn clamp_u32(field: &'static str, v: u64) -> Result<u32, WireError> {
    u32::try_from(v).map_err(|_| WireError::BadField {
        field,
        expected: "a 32-bit integer",
    })
}

fn faults_from_json(v: &Json) -> Result<FaultSpec, WireError> {
    let mut r = ObjReader::new(v, "faults")?;
    let server_count = r.opt_u64("server_count")?.map(|v| v as usize);
    let entries_json = r.req("entries")?.as_arr().ok_or(WireError::BadField {
        field: "entries",
        expected: "an array",
    })?;
    let mut entries = Vec::with_capacity(entries_json.len());
    for e in entries_json {
        entries.push(fault_entry_from_json(e)?);
    }
    r.finish()?;
    Ok(FaultSpec {
        server_count,
        entries,
    })
}

fn fault_entry_from_json(v: &Json) -> Result<FaultEntry, WireError> {
    let mut r = ObjReader::new(v, "fault entry")?;
    let kind = r.str("kind")?;
    let entry = match kind {
        "crash" => FaultEntry::Crash {
            at_ns: r.u64("at_ns")?,
        },
        "server_slowdown" => FaultEntry::ServerSlowdown {
            server: r.u64("server")? as usize,
            from_ns: r.u64("from_ns")?,
            until_ns: r.u64("until_ns")?,
            factor: r.f64("factor")?,
        },
        "server_stall" => FaultEntry::ServerStall {
            server: r.u64("server")? as usize,
            from_ns: r.u64("from_ns")?,
            until_ns: r.u64("until_ns")?,
        },
        "transient_errors" => FaultEntry::TransientErrors {
            server: r.u64("server")? as usize,
            from_ns: r.u64("from_ns")?,
            until_ns: r.u64("until_ns")?,
            budget: r.u64("budget")?,
        },
        "server_failure" => FaultEntry::ServerFailure {
            server: r.u64("server")? as usize,
            at_ns: r.u64("at_ns")?,
        },
        "message_drops" => FaultEntry::MessageDrops {
            src: r.opt_u64("src")?.map(|v| v as usize),
            dst: r.opt_u64("dst")?.map(|v| v as usize),
            from_ns: r.u64("from_ns")?,
            until_ns: r.u64("until_ns")?,
            retransmit_ns: r.u64("retransmit_ns")?,
            budget: r.u64("budget")?,
        },
        "message_delays" => FaultEntry::MessageDelays {
            src: r.opt_u64("src")?.map(|v| v as usize),
            dst: r.opt_u64("dst")?.map(|v| v as usize),
            from_ns: r.u64("from_ns")?,
            until_ns: r.u64("until_ns")?,
            extra_ns: r.u64("extra_ns")?,
            budget: r.u64("budget")?,
        },
        "straggler" => FaultEntry::Straggler {
            rank: r.u64("rank")? as usize,
            from_ns: r.u64("from_ns")?,
            until_ns: r.u64("until_ns")?,
            factor: r.f64("factor")?,
        },
        _ => {
            return Err(WireError::BadField {
                field: "kind",
                expected: "a known fault kind",
            })
        }
    };
    r.finish()?;
    Ok(entry)
}

fn retry_from_json(v: &Json) -> Result<RetrySpec, WireError> {
    let mut r = ObjReader::new(v, "retry")?;
    let spec = RetrySpec {
        max_retries: clamp_u32("max_retries", r.u64("max_retries")?)?,
        backoff_ns: r.u64("backoff_ns")?,
        op_timeout_ns: r.opt_u64("op_timeout_ns")?,
        failover: r.bool("failover", true)?,
    };
    r.finish()?;
    Ok(spec)
}

fn advisory_from_json(v: &Json) -> Result<Advisory, WireError> {
    let mut r = ObjReader::new(v, "advisory")?;
    let hints = match r.take("hints") {
        None | Some(Json::Null) => None,
        Some(h) => Some(hints_from_json(h)?),
    };
    let advisory = Advisory {
        hints,
        write_behind: r.opt_u64("write_behind")?.map(|v| v as usize),
        app_stripe: r.opt_u64("app_stripe")?,
    };
    r.finish()?;
    Ok(advisory)
}

fn hints_from_json(v: &Json) -> Result<Hints, WireError> {
    let mut r = ObjReader::new(v, "hints")?;
    let mut h = Hints {
        cb_nodes: r.opt_u64("cb_nodes")?.map(|v| v as usize),
        ..Hints::default()
    };
    if let Some(v) = r.opt_u64("cb_buffer_size")? {
        h.cb_buffer_size = v;
    }
    h.ds_read = r.bool("ds_read", h.ds_read)?;
    h.ds_write = r.bool("ds_write", h.ds_write)?;
    if let Some(v) = r.opt_u64("sieve_buffer_size")? {
        h.sieve_buffer_size = v;
    }
    h.align_file_domains = r.bool("align_file_domains", h.align_file_domains)?;
    h.cb_write = r.bool("cb_write", h.cb_write)?;
    h.cb_read = r.bool("cb_read", h.cb_read)?;
    r.finish()?;
    Ok(h)
}

// ---------------------------------------------------------------------
// Reports → JSON
// ---------------------------------------------------------------------

/// Serialize a [`RunReport`] — the same shape whether it came from a
/// bench bin, an integration test, or the serve layer.
pub fn report_to_json(r: &RunReport) -> Json {
    Json::Obj(vec![
        ("platform".into(), Json::str(r.platform)),
        ("strategy".into(), Json::str(r.strategy)),
        ("problem".into(), Json::Str(r.problem.clone())),
        ("nranks".into(), Json::U64(r.nranks as u64)),
        ("write_time_s".into(), Json::F64(r.write_time)),
        ("read_time_s".into(), Json::F64(r.read_time)),
        ("bytes_written".into(), Json::U64(r.bytes_written)),
        ("bytes_read".into(), Json::U64(r.bytes_read)),
        ("grids".into(), Json::U64(r.grids as u64)),
        ("max_level".into(), Json::U64(r.max_level as u64)),
        ("verified".into(), Json::Bool(r.verified)),
        ("makespan_s".into(), Json::F64(r.makespan)),
        ("image_digest".into(), Json::Str(hex_digest(r.image_digest))),
        ("resilience".into(), resilience_to_json(&r.resilience)),
        ("ordered_ops".into(), Json::U64(r.ordered_ops)),
        (
            "sched".into(),
            Json::Obj(vec![
                ("wakeups".into(), Json::U64(r.sched.wakeups)),
                ("handoffs".into(), Json::U64(r.sched.handoffs)),
                ("index_updates".into(), Json::U64(r.sched.index_updates)),
                (
                    "lock_acquisitions".into(),
                    Json::U64(r.sched.lock_acquisitions),
                ),
            ]),
        ),
    ])
}

pub fn resilience_to_json(r: &ResilienceReport) -> Json {
    Json::Obj(vec![
        ("transient_errors".into(), Json::U64(r.transient_errors)),
        ("retries".into(), Json::U64(r.retries)),
        ("timeouts".into(), Json::U64(r.timeouts)),
        ("failovers".into(), Json::U64(r.failovers)),
        ("dropped_messages".into(), Json::U64(r.dropped_messages)),
        ("delayed_messages".into(), Json::U64(r.delayed_messages)),
        ("straggler_secs".into(), Json::F64(r.straggler_secs)),
        ("degraded_servers".into(), Json::U64(r.degraded_servers)),
        ("degraded_mode_secs".into(), Json::F64(r.degraded_mode_secs)),
        ("crashes".into(), Json::U64(r.crashes)),
        ("recoveries".into(), Json::U64(r.recoveries)),
        ("torn_generations".into(), Json::U64(r.torn_generations)),
    ])
}

/// Violations serialize through their `Display` form: the checker's
/// message text is its stable human-auditable shape.
pub fn check_report_to_json(c: &CheckReport) -> Json {
    Json::Obj(vec![
        ("clean".into(), Json::Bool(c.is_clean())),
        (
            "violations".into(),
            Json::Arr(
                c.violations
                    .iter()
                    .map(|v| Json::Str(v.to_string()))
                    .collect(),
            ),
        ),
        ("dropped".into(), Json::U64(c.dropped as u64)),
    ])
}

pub fn recovery_to_json(r: &RecoveryOutcome) -> Json {
    Json::Obj(vec![
        ("crashes".into(), Json::U64(r.crashes)),
        (
            "resumed_generation".into(),
            opt_u64(r.resumed_generation.map(|g| g as u64)),
        ),
        ("resumed_cycle".into(), Json::U64(r.resumed_cycle)),
        ("torn_generations".into(), Json::U64(r.torn_generations)),
        ("resume_verified".into(), Json::Bool(r.resume_verified)),
    ])
}

/// Everything a run produced, minus probe traces (full event traces are
/// a debugging artifact, far too heavy for a service response).
pub fn outcome_to_json(o: &RunOutcome) -> Json {
    let mut fields: Vec<(String, Json)> = vec![("report".into(), report_to_json(&o.report))];
    if let Some(c) = &o.check {
        fields.push(("check".into(), check_report_to_json(c)));
    }
    if let Some(r) = &o.recovery {
        fields.push(("recovery".into(), recovery_to_json(r)));
    }
    Json::Obj(fields)
}

/// Serialize a tuner winner — label plus the full knob set.
pub fn tune_config_to_json(t: &TuneConfig) -> Json {
    let mut o: Vec<(String, Json)> = vec![
        ("label".into(), Json::Str(t.label.clone())),
        ("hints".into(), hints_to_json(&t.hints)),
    ];
    if let Some(s) = t.app_stripe {
        o.push(("app_stripe".into(), Json::U64(s)));
    }
    if let Some(w) = t.write_behind {
        o.push(("write_behind".into(), Json::U64(w as u64)));
    }
    Json::Obj(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn base() -> ExperimentSpec {
        let mut s = ExperimentSpec::new(PlatformId::IbmSp2, StrategyId::MpiIoOptimized, 16, 4);
        s.cycles = 2;
        s.particle_fraction = 0.5;
        s
    }

    fn rich() -> ExperimentSpec {
        let mut s = base();
        s.check = CheckMode::Strict;
        s.probe = false;
        s.dump_every = Some(1);
        s.retry = Some(RetrySpec {
            max_retries: 3,
            backoff_ns: 1_000_000,
            op_timeout_ns: Some(30_000_000_000),
            failover: true,
        });
        s.advisory = Some(Advisory {
            hints: Some(Hints {
                cb_nodes: Some(2),
                ..Hints::default()
            }),
            write_behind: Some(4),
            app_stripe: Some(1 << 20),
        });
        s.faults = Some(FaultSpec {
            server_count: None,
            entries: vec![
                FaultEntry::ServerSlowdown {
                    server: 0,
                    from_ns: 0,
                    until_ns: 1_000_000_000,
                    factor: 4.0,
                },
                FaultEntry::MessageDrops {
                    src: None,
                    dst: Some(1),
                    from_ns: 0,
                    until_ns: 500,
                    retransmit_ns: 10,
                    budget: 3,
                },
            ],
        });
        s
    }

    #[test]
    fn spec_round_trips_through_json() {
        for s in [base(), rich()] {
            let doc = spec_to_json(&s).encode();
            let back = spec_from_json(&parse(&doc).unwrap()).unwrap();
            assert_eq!(back, s);
            assert_eq!(back.canonical_digest(), s.canonical_digest());
            // encode → decode → re-encode is a fixed point.
            assert_eq!(spec_to_json(&back).encode(), doc);
        }
    }

    #[test]
    fn field_order_does_not_matter() {
        let s = base();
        let Json::Obj(mut fields) = spec_to_json(&s) else {
            panic!("spec must encode as an object")
        };
        fields.reverse();
        let back = spec_from_json(&Json::Obj(fields)).unwrap();
        assert_eq!(back.canonical_digest(), s.canonical_digest());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let doc = r#"{"platform":"ibm-sp2","strategy":"mpiio-optimized","root_n":16,"nranks":4,"turbo":true}"#;
        let err = spec_from_json(&parse(doc).unwrap()).unwrap_err();
        assert_eq!(
            err,
            WireError::UnknownField {
                field: "turbo".into()
            }
        );
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        let doc = r#"{"platform":"ibm-sp2","strategy":"mpiio-optimized","root_n":16}"#;
        assert!(matches!(
            spec_from_json(&parse(doc).unwrap()),
            Err(WireError::MissingField { field: "nranks" })
        ));
    }

    #[test]
    fn unknown_platform_is_a_spec_error() {
        let doc = r#"{"platform":"cray-t3e","strategy":"mpiio-optimized","root_n":16,"nranks":4}"#;
        assert!(matches!(
            spec_from_json(&parse(doc).unwrap()),
            Err(WireError::Spec(SpecError::UnknownPlatform(_)))
        ));
    }

    #[test]
    fn digests_cross_the_wire_as_hex_strings() {
        assert_eq!(hex_digest(0xdead_beef), "0x00000000deadbeef");
    }
}
