//! `amrio-json` — a minimal, dependency-free JSON value type with an
//! exact-round-trip encoder and a strict recursive-descent parser.
//!
//! Design choices that matter to the serve layer:
//!
//! - **Objects preserve insertion order** (`Vec<(String, Json)>`, not a
//!   hash map), so encode→decode→re-encode is a byte-level fixed point
//!   and documents stay diffable.
//! - **Integers stay integers.** Literals without `.`/`e`/`E` decode to
//!   `U64`/`I64`, never through `f64` — a 64-bit FNV digest survives
//!   the wire untouched. Floats encode via `{:?}` (Rust's
//!   shortest-round-trip repr), so `f64` values are also exact.
//! - **Strict parsing.** Trailing garbage, trailing commas, unescaped
//!   control characters, lone surrogates and non-finite numbers are
//!   errors, not lenient accepts.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Negative integer literal (always < 0; non-negative parse to `U64`).
    I64(i64),
    /// Non-negative integer literal.
    U64(u64),
    /// Literal with a fraction or exponent.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Object field lookup (first match, linear scan — objects are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact encoding (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding, two-space indent, trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                // {:?} yields shortest-round-trip decimal incl. e-notation,
                // which is valid JSON for every finite f64.
                debug_assert!(v.is_finite(), "non-finite f64 cannot be encoded");
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting bound: a hostile document cannot overflow the parser stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this
                    // char boundary arithmetic cannot split a scalar).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = utf8_len(rest[0]);
                    let ch = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require an immediately following \uXXXX low.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !v.is_finite() {
                return Err(self.err("number overflows f64"));
            }
            Ok(Json::F64(v))
        } else if neg {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("integer overflows i64"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("integer overflows u64"))
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in [
            "null", "true", "false", "0", "17", "-3", "1.5", "1e3", "\"hi\"",
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{doc}");
        }
    }

    #[test]
    fn u64_digests_survive_exactly() {
        let doc = format!("{{\"d\":{}}}", u64::MAX);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("d"), Some(&Json::U64(u64::MAX)));
        assert_eq!(v.encode(), doc);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = r#"{"z":1,"a":2,"m":3}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.encode(), doc);
    }

    #[test]
    fn encode_decode_is_fixed_point() {
        let doc = r#"{"s":"a\"b\\c\nd","arr":[1,-2,3.25,null,true],"nest":{"k":[{"x":1e-3}]},"empty":{},"earr":[]}"#;
        let v = parse(doc).unwrap();
        let enc = v.encode();
        let v2 = parse(&enc).unwrap();
        assert_eq!(v, v2);
        assert_eq!(enc, v2.encode());
        // Pretty form decodes to the same value too.
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v, Json::Str("Aé😀".to_string()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "+1",
            "nul",
            "\"\x01\"",
            "{} {}",
            "1 2",
            "--1",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn float_encoding_is_shortest_round_trip() {
        let v = Json::F64(0.1);
        assert_eq!(v.encode(), "0.1");
        let v = Json::F64(1e300);
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }
}
