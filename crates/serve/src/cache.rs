//! The sharded memoizing result cache with in-flight coalescing.
//!
//! Keyed on the spec's canonical FNV digest. Because runs are
//! deterministic, a digest hit can return the stored outcome without
//! re-simulating; the stored `image_digest` is the proof a client can
//! check against any fresh run of the same spec.
//!
//! Coalescing protocol (DESIGN.md §5l): the first requester of a digest
//! installs an `InFlight` marker and runs the simulation *outside* the
//! shard lock; concurrent requesters of the same digest find the marker,
//! park on its condvar, and receive the published result — N identical
//! concurrent requests cost exactly one simulation. If the run fails,
//! the marker is removed so later requests retry rather than caching a
//! failure forever.
//!
//! FNV is not collision-free, so `Done` entries also store the canonical
//! string; a digest match with a canonical mismatch (astronomically
//! rare, but cheap to guard) bypasses the cache and is counted.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How a lookup was satisfied — drives the stats counters and the
/// per-class latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served from a completed entry, no simulation.
    Hit,
    /// This request ran the simulation and published the entry.
    Miss,
    /// Another in-flight request ran it; this one waited for the result.
    Coalesced,
    /// Digest collision with a different canonical string: ran
    /// uncached.
    Collision,
}

/// A completed run, as stored in the cache.
#[derive(Debug)]
pub struct Cached<V> {
    /// Canonical spec string — the collision guard.
    pub canonical: String,
    pub value: V,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    Running,
    /// Publisher stored the shared result (also installed in the map).
    Done(Arc<Cached<V>>),
    /// Publisher's run failed; waiters propagate the error message.
    Failed(String),
}

enum Entry<V> {
    InFlight(Arc<Flight<V>>),
    Done(Arc<Cached<V>>),
}

/// Sharded map digest → entry. Shard count is fixed at construction;
/// lookups lock exactly one shard, and never while simulating.
pub struct RunCache<V> {
    shards: Vec<Mutex<HashMap<u64, Entry<V>>>>,
}

impl<V> RunCache<V> {
    pub fn new(shards: usize) -> RunCache<V> {
        assert!(shards > 0);
        RunCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, digest: u64) -> &Mutex<HashMap<u64, Entry<V>>> {
        // High bits: FNV mixes them well, and consecutive digests are
        // not meaningful anyway.
        &self.shards[(digest >> 32) as usize % self.shards.len()]
    }

    /// Entries currently resident (completed + in-flight), for /stats.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `digest`, running `run` at most once across all
    /// concurrent callers with the same digest. `run` executes outside
    /// any shard lock. Returns the shared result (or the run's error)
    /// plus how the lookup was satisfied.
    pub fn get_or_run(
        &self,
        digest: u64,
        canonical: &str,
        run: impl FnOnce() -> Result<V, String>,
    ) -> (Result<Arc<Cached<V>>, String>, Outcome) {
        let flight = {
            let mut shard = self.shard(digest).lock().unwrap();
            match shard.get(&digest) {
                Some(Entry::Done(c)) => {
                    if c.canonical == canonical {
                        return (Ok(Arc::clone(c)), Outcome::Hit);
                    }
                    // Same digest, different spec: serve uncached.
                    drop(shard);
                    let r = run().map(|value| {
                        Arc::new(Cached {
                            canonical: canonical.to_string(),
                            value,
                        })
                    });
                    return (r, Outcome::Collision);
                }
                Some(Entry::InFlight(f)) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        cv: Condvar::new(),
                    });
                    shard.insert(digest, Entry::InFlight(Arc::clone(&f)));
                    drop(shard);
                    // We are the publisher: simulate, then install the
                    // result and wake every waiter.
                    let result = run();
                    let mut shard = self.shard(digest).lock().unwrap();
                    let outcome = match result {
                        Ok(value) => {
                            let c = Arc::new(Cached {
                                canonical: canonical.to_string(),
                                value,
                            });
                            shard.insert(digest, Entry::Done(Arc::clone(&c)));
                            *f.state.lock().unwrap() = FlightState::Done(Arc::clone(&c));
                            Ok(c)
                        }
                        Err(e) => {
                            // Do not cache failures: remove the marker
                            // so the next request retries.
                            shard.remove(&digest);
                            *f.state.lock().unwrap() = FlightState::Failed(e.clone());
                            Err(e)
                        }
                    };
                    drop(shard);
                    f.cv.notify_all();
                    return (outcome, Outcome::Miss);
                }
            }
        };
        // Coalesced: park until the publisher resolves the flight.
        let mut st = flight.state.lock().unwrap();
        while matches!(*st, FlightState::Running) {
            st = flight.cv.wait(st).unwrap();
        }
        let r = match &*st {
            FlightState::Done(c) => Ok(Arc::clone(c)),
            FlightState::Failed(e) => Err(e.clone()),
            FlightState::Running => unreachable!(),
        };
        (r, Outcome::Coalesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn second_lookup_hits() {
        let cache: RunCache<u32> = RunCache::new(4);
        let (r, o) = cache.get_or_run(1, "spec-a", || Ok(42));
        assert_eq!((r.unwrap().value, o), (42, Outcome::Miss));
        let (r, o) = cache.get_or_run(1, "spec-a", || panic!("must not run"));
        assert_eq!((r.unwrap().value, o), (42, Outcome::Hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_identical_requests_run_once() {
        let cache: Arc<RunCache<u32>> = Arc::new(RunCache::new(4));
        let runs = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (cache, runs, barrier) =
                    (Arc::clone(&cache), Arc::clone(&runs), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    let (r, o) = cache.get_or_run(7, "spec-b", || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Let waiters pile up on the flight.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(99)
                    });
                    (r.unwrap().value, o)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one simulation");
        assert!(results.iter().all(|(v, _)| *v == 99));
        assert_eq!(
            results.iter().filter(|(_, o)| *o == Outcome::Miss).count(),
            1
        );
        assert!(results
            .iter()
            .filter(|(_, o)| *o != Outcome::Miss)
            .all(|(_, o)| *o == Outcome::Coalesced || *o == Outcome::Hit));
    }

    #[test]
    fn failures_are_not_cached() {
        let cache: RunCache<u32> = RunCache::new(2);
        let (r, o) = cache.get_or_run(3, "spec-c", || Err("boom".to_string()));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(o, Outcome::Miss);
        assert!(cache.is_empty(), "failed flight must be evicted");
        let (r, o) = cache.get_or_run(3, "spec-c", || Ok(5));
        assert_eq!((r.unwrap().value, o), (5, Outcome::Miss));
    }

    #[test]
    fn digest_collisions_bypass_the_cache() {
        let cache: RunCache<u32> = RunCache::new(2);
        cache.get_or_run(9, "spec-x", || Ok(1)).0.unwrap();
        let (r, o) = cache.get_or_run(9, "spec-y", || Ok(2));
        assert_eq!((r.unwrap().value, o), (2, Outcome::Collision));
        // The original entry is untouched.
        let (r, o) = cache.get_or_run(9, "spec-x", || panic!("must hit"));
        assert_eq!((r.unwrap().value, o), (1, Outcome::Hit));
    }
}
