//! `amrio-serve` — experiment-as-a-service.
//!
//! A std-only HTTP/JSON front-end over the deterministic simulation:
//! clients `POST /run` an [`ExperimentSpec`] document, the server
//! schedules it on a bounded worker pool, and identical specs — the
//! common case when sweeping configurations under heavy traffic — are
//! served from a sharded memoizing cache keyed on the spec's canonical
//! FNV digest, with in-flight coalescing so N concurrent identical
//! requests cost one simulation. Every response carries the run's
//! `image_digest` as the cache-validity proof: a client can always
//! compare it against a fresh uncached run of the same spec.
//!
//! Endpoints:
//!
//! - `POST /run` — body: a spec document (see [`wire`]). Response 200:
//!   `{"spec_digest","image_digest","cached","coalesced","outcome"}`.
//!   Malformed JSON, schema violations and invalid configurations are
//!   400 with `{"error","error_kind"}`; full queue is 503.
//! - `GET /stats` — counters, queue depth, cache size, latency
//!   histograms ([`stats`]).
//! - `GET /healthz` — liveness probe, `"ok"`.

#![forbid(unsafe_code)]

pub mod cache;
pub mod http;
pub mod json;
pub mod stats;
pub mod wire;

use amrio_enzo::spec::ExperimentSpec;
use amrio_enzo::Experiment;
use cache::{Outcome, RunCache};
use http::{error_body, read_request, write_response, HttpError, Request};
use json::Json;
use stats::ServeStats;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs. Defaults are sized for a benchmark host:
/// worker count tracks available cores, the queue bounds memory, and
/// `max_ranks` keeps one hostile spec from monopolizing the box.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads executing requests (≥ 1).
    pub workers: usize,
    /// Accepted-but-unserviced connection bound; beyond it new
    /// connections get an immediate 503 (fail fast beats unbounded
    /// queueing).
    pub queue_cap: usize,
    /// Result-cache shard count.
    pub shards: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Largest accepted `nranks` (simulation threads per run).
    pub max_ranks: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServeConfig {
            workers: cores.max(2),
            queue_cap: 128,
            shards: 16,
            max_body: 1 << 20,
            max_ranks: 512,
        }
    }
}

/// The connection queue: a bounded FIFO — fair in arrival order —
/// plus a shutdown flag workers observe.
struct Queue {
    deque: Mutex<QueueInner>,
    nonempty: Condvar,
}

struct QueueInner {
    conns: VecDeque<TcpStream>,
    stopping: bool,
}

impl Queue {
    fn new() -> Queue {
        Queue {
            deque: Mutex::new(QueueInner {
                conns: VecDeque::new(),
                stopping: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Hands the connection back when full (caller answers 503 inline).
    fn push(&self, conn: TcpStream, cap: usize) -> Result<(), TcpStream> {
        let mut q = self.deque.lock().unwrap();
        if q.conns.len() >= cap {
            return Err(conn);
        }
        q.conns.push_back(conn);
        drop(q);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks for work; `None` means shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.deque.lock().unwrap();
        loop {
            if let Some(c) = q.conns.pop_front() {
                return Some(c);
            }
            if q.stopping {
                return None;
            }
            q = self.nonempty.wait(q).unwrap();
        }
    }

    fn len(&self) -> usize {
        self.deque.lock().unwrap().conns.len()
    }

    fn stop(&self) {
        self.deque.lock().unwrap().stopping = true;
        self.nonempty.notify_all();
    }
}

/// Shared server state: config, cache, stats, queue.
struct Shared {
    cfg: ServeConfig,
    cache: RunCache<Json>,
    stats: ServeStats,
    queue: Queue,
}

/// A running server: accept thread + worker pool bound to a local
/// address. Dropping the handle without [`ServerHandle::stop`] leaves
/// the threads running for the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain workers, join all threads.
    pub fn stop(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.queue.stop();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving.
pub fn serve(addr: &str, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(cfg.workers >= 1, "need at least one worker");
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cfg,
        cache: RunCache::new(cfg.shards.max(1)),
        stats: ServeStats::new(),
        queue: Queue::new(),
    });
    let stopping = Arc::new(AtomicBool::new(false));

    let accept_shared = Arc::clone(&shared);
    let accept_stop = Arc::clone(&stopping);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(conn) = conn else { continue };
            match accept_shared.queue.push(conn, accept_shared.cfg.queue_cap) {
                Ok(()) => {
                    accept_shared
                        .stats
                        .in_system
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(mut conn) => {
                    accept_shared
                        .stats
                        .queue_full
                        .fetch_add(1, Ordering::Relaxed);
                    write_response(
                        &mut conn,
                        503,
                        "application/json",
                        &error_body("queue-full", "request queue is full, retry later"),
                    );
                }
            }
        }
    });

    let workers = (0..cfg.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while let Some(mut conn) = shared.queue.pop() {
                    handle_connection(&shared, &mut conn);
                    shared.stats.in_system.fetch_sub(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    Ok(ServerHandle {
        addr: bound,
        shared,
        stopping,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn handle_connection(shared: &Shared, conn: &mut TcpStream) {
    let req = match read_request(conn, shared.cfg.max_body) {
        Ok(r) => r,
        Err(HttpError::TooLarge) => {
            write_response(
                conn,
                413,
                "application/json",
                &error_body("body-too-large", "request body exceeds the configured cap"),
            );
            return;
        }
        Err(HttpError::Bad(msg)) => {
            write_response(
                conn,
                400,
                "application/json",
                &error_body("bad-request", msg),
            );
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/run") => handle_run(shared, conn, &req),
        ("GET", "/stats") => {
            let body = shared
                .stats
                .to_json(shared.queue.len(), shared.cache.len())
                .pretty();
            write_response(conn, 200, "application/json", body.as_bytes());
        }
        ("GET", "/healthz") => write_response(conn, 200, "text/plain", b"ok"),
        ("POST" | "GET", _) => write_response(
            conn,
            404,
            "application/json",
            &error_body("not-found", "unknown path"),
        ),
        _ => write_response(
            conn,
            405,
            "application/json",
            &error_body("method-not-allowed", "use POST /run or GET /stats"),
        ),
    }
}

fn handle_run(shared: &Shared, conn: &mut TcpStream, req: &Request) {
    let start = Instant::now();
    let Ok(text) = std::str::from_utf8(&req.body) else {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        write_response(
            conn,
            400,
            "application/json",
            &error_body("bad-json", "body is not utf-8"),
        );
        return;
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            write_response(
                conn,
                400,
                "application/json",
                &error_body("bad-json", &e.to_string()),
            );
            return;
        }
    };
    let spec = match wire::spec_from_json(&doc) {
        Ok(s) => s,
        Err(e) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let kind = match &e {
                wire::WireError::Spec(se) => se.kind(),
                wire::WireError::UnknownField { .. } => "unknown-field",
                wire::WireError::MissingField { .. } => "missing-field",
                wire::WireError::BadField { .. } => "bad-field",
            };
            write_response(
                conn,
                400,
                "application/json",
                &error_body(kind, &e.to_string()),
            );
            return;
        }
    };
    if let Err(e) = spec.validate() {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        write_response(
            conn,
            400,
            "application/json",
            &error_body(e.kind(), &e.to_string()),
        );
        return;
    }
    if spec.nranks > shared.cfg.max_ranks {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        write_response(
            conn,
            400,
            "application/json",
            &error_body(
                "too-many-ranks",
                &format!(
                    "nranks {} exceeds this server's cap {}",
                    spec.nranks, shared.cfg.max_ranks
                ),
            ),
        );
        return;
    }

    let digest = spec.canonical_digest();
    let canonical = spec.canonical_string();
    let (result, outcome) = shared
        .cache
        .get_or_run(digest, &canonical, || run_spec(&spec));

    let elapsed_us = start.elapsed().as_micros() as u64;
    match outcome {
        Outcome::Hit => {
            shared.stats.hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.hit_latency.record_us(elapsed_us);
        }
        Outcome::Miss => {
            shared.stats.misses.fetch_add(1, Ordering::Relaxed);
            shared.stats.miss_latency.record_us(elapsed_us);
        }
        Outcome::Coalesced => {
            shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            shared.stats.coalesced_latency.record_us(elapsed_us);
        }
        Outcome::Collision => {
            shared.stats.collisions.fetch_add(1, Ordering::Relaxed);
            shared.stats.miss_latency.record_us(elapsed_us);
        }
    }

    match result {
        Ok(cached) => {
            let image_digest = cached
                .value
                .get("report")
                .and_then(|r| r.get("image_digest"))
                .and_then(|d| d.as_str())
                .unwrap_or("0x0")
                .to_string();
            let body = Json::Obj(vec![
                ("spec_digest".into(), Json::Str(wire::hex_digest(digest))),
                ("image_digest".into(), Json::Str(image_digest)),
                ("cached".into(), Json::Bool(outcome == Outcome::Hit)),
                (
                    "coalesced".into(),
                    Json::Bool(outcome == Outcome::Coalesced),
                ),
                ("outcome".into(), cached.value.clone()),
            ])
            .encode();
            write_response(conn, 200, "application/json", body.as_bytes());
        }
        Err(msg) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            write_response(
                conn,
                500,
                "application/json",
                &error_body("run-failed", &msg),
            );
        }
    }
}

/// Execute one validated spec, catching panics (a simulation bug must
/// cost one 500, not the server process).
fn run_spec(spec: &ExperimentSpec) -> Result<Json, String> {
    let exp = Experiment::from_spec(spec).map_err(|e| e.to_string())?;
    match catch_unwind(AssertUnwindSafe(|| exp.run())) {
        Ok(outcome) => Ok(wire::outcome_to_json(&outcome)),
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| p.downcast_ref::<&str>().copied())
                .unwrap_or("simulation panicked");
            Err(format!("simulation panicked: {msg}"))
        }
    }
}
