//! A deliberately minimal HTTP/1.1 layer over `std::net`: enough to
//! serve `POST /run` and `GET /stats` to curl and the load generator,
//! nothing more. One request per connection (`Connection: close`),
//! `Content-Length` bodies only (no chunked transfer), bounded header
//! and body sizes so a hostile peer cannot balloon memory.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed request line + headers + body.
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Why a connection could not produce a `Request`.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request — answer 400.
    Bad(&'static str),
    /// Body advertised more than the configured cap — answer 413.
    TooLarge,
    /// Socket-level failure — no answer possible.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

const MAX_HEAD: usize = 16 * 1024;

/// Read one request from the stream. `max_body` caps the accepted
/// `Content-Length`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    // Read until the blank line that ends the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_crlfcrlf(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::Bad("header block too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed mid-header"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Bad("non-utf8 header block"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Bad("missing request path"))?
        .to_string();
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::Bad("malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("bad content-length"))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response and flush. Always `Connection: close`.
pub fn write_response(stream: &mut TcpStream, code: u16, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    // The peer may already be gone; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// JSON error body helper: `{"error":"...","error_kind":"..."}`.
pub fn error_body(kind: &str, msg: &str) -> Vec<u8> {
    crate::json::Json::Obj(vec![
        ("error".into(), crate::json::Json::str(msg)),
        ("error_kind".into(), crate::json::Json::str(kind)),
    ])
    .encode()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_header_terminator() {
        assert_eq!(find_crlfcrlf(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_crlfcrlf(b"partial\r\n"), None);
    }
}
