//! `amrio-net` — interconnect cost models for the simulated platforms.
//!
//! A [`Net`] prices point-to-point transfers between *endpoints* (compute
//! processors and I/O servers), each living on a *node*. Three behaviours
//! matter for reproducing the paper:
//!
//! * **ccNUMA** (SGI Origin2000): one big node; all transfers go at memory
//!   speed with very low latency and no port bottleneck — this is why
//!   two-phase redistribution is nearly free there (paper §4.1).
//! * **SMP cluster** (IBM SP-2): 8 processors share one switch adapter per
//!   node; inter-node messages serialize on both adapters, so many
//!   processors on one node doing I/O queue up (paper §4.2).
//! * **Fast Ethernet cluster** (Chiba City): one processor per node behind
//!   a 100 Mb/s NIC with high latency; all redistribution and client↔I/O
//!   node traffic crawls through it (paper §4.3).
//!
//! State (adapter free times) lives inside [`Net`]; callers must invoke
//! [`Net::transfer`] from within `amrio-simt` ordered sections so requests
//! arrive in nondecreasing virtual time and runs stay deterministic.

#![forbid(unsafe_code)]

use amrio_fault::FaultPlan;
use amrio_simt::{SimDur, SimTime};
use std::sync::Arc;

/// An endpoint index: a compute rank or an I/O server, as assigned by the
/// platform that built the [`Net`].
pub type Endpoint = usize;

/// Latency + bandwidth of one class of link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    pub latency: SimDur,
    /// Bytes per second.
    pub bandwidth: f64,
}

impl LinkParams {
    pub fn new(latency_us: u64, bandwidth_mb_s: f64) -> Self {
        LinkParams {
            latency: SimDur::from_micros(latency_us),
            bandwidth: bandwidth_mb_s * 1.0e6,
        }
    }

    fn time_for(&self, bytes: u64) -> SimDur {
        self.latency + SimDur::transfer(bytes, self.bandwidth)
    }
}

/// Outcome of a priced transfer.
#[derive(Clone, Copy, Debug)]
pub struct Xfer {
    /// When the sender's CPU is free again (injection finished).
    pub sender_free: SimTime,
    /// When the last byte is available at the destination.
    pub arrival: SimTime,
}

/// Configuration of an interconnect.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// `node_of[endpoint]` — which physical node hosts each endpoint.
    pub node_of: Vec<usize>,
    /// Link used between endpoints on the same node (shared memory).
    pub intra: LinkParams,
    /// Link used between endpoints on different nodes.
    pub inter: LinkParams,
    /// If true, inter-node messages serialize on the source and
    /// destination node adapters (SP switch adapter, Ethernet NIC).
    pub port_limited: bool,
    /// Per-message software overhead charged on top of link latency.
    pub per_message: SimDur,
}

impl NetConfig {
    /// SGI Origin2000-style ccNUMA: every processor in one shared-memory
    /// machine; bristled fat hypercube → high bisection bandwidth, no port
    /// serialization.
    pub fn ccnuma(nprocs: usize) -> NetConfig {
        NetConfig {
            node_of: vec![0; nprocs],
            intra: LinkParams::new(1, 180.0),
            inter: LinkParams::new(1, 180.0),
            port_limited: false,
            per_message: SimDur::from_micros(1),
        }
    }

    /// IBM SP-2-style clustered SMP: `procs_per_node` processors share one
    /// switch adapter; the switch itself has full bisection.
    pub fn smp_cluster(nprocs: usize, procs_per_node: usize) -> NetConfig {
        assert!(procs_per_node > 0);
        NetConfig {
            node_of: (0..nprocs).map(|p| p / procs_per_node).collect(),
            intra: LinkParams::new(2, 400.0),
            inter: LinkParams::new(22, 133.0),
            port_limited: true,
            per_message: SimDur::from_micros(3),
        }
    }

    /// Fast-Ethernet Linux cluster (Chiba City): one processor per node,
    /// 100 Mb/s ≈ 12.5 MB/s per NIC, high TCP latency.
    pub fn fast_ethernet(nnodes: usize) -> NetConfig {
        NetConfig {
            node_of: (0..nnodes).collect(),
            intra: LinkParams::new(1, 400.0),
            inter: LinkParams::new(120, 11.5),
            port_limited: true,
            per_message: SimDur::from_micros(30),
        }
    }

    /// Extend the endpoint space with `extra` additional endpoints mapped to
    /// the given nodes (used to place I/O servers on the fabric).
    pub fn with_extra_endpoints(mut self, nodes: &[usize]) -> NetConfig {
        self.node_of.extend_from_slice(nodes);
        self
    }

    pub fn num_nodes(&self) -> usize {
        self.node_of.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// The stateful interconnect: prices transfers and tracks adapter
/// occupancy.
#[derive(Clone, Debug)]
pub struct Net {
    cfg: NetConfig,
    adapter_free: Vec<SimTime>,
    /// Total bytes moved across node boundaries (for reports).
    pub inter_node_bytes: u64,
    /// Total messages priced.
    pub messages: u64,
    /// Optional fault schedule consulted per message (drops/delays).
    faults: Option<Arc<FaultPlan>>,
}

impl Net {
    pub fn new(cfg: NetConfig) -> Net {
        let nodes = cfg.num_nodes();
        Net {
            cfg,
            adapter_free: vec![SimTime::ZERO; nodes],
            inter_node_bytes: 0,
            messages: 0,
            faults: None,
        }
    }

    /// Attach a fault plan: every subsequent [`Net::transfer`] consults
    /// it for message drops/delays. An empty plan changes nothing.
    pub fn attach_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    pub fn node_of(&self, ep: Endpoint) -> usize {
        self.cfg.node_of[ep]
    }

    pub fn endpoints(&self) -> usize {
        self.cfg.node_of.len()
    }

    /// Price a message of `bytes` from `src` to `dst` starting at `t`.
    ///
    /// Port-limited inter-node messages serialize on both adapters: the
    /// transfer starts when both are free, and holds both for the wire
    /// time. Intra-node messages and non-port-limited fabrics never queue.
    pub fn transfer(&mut self, src: Endpoint, dst: Endpoint, bytes: u64, t: SimTime) -> Xfer {
        self.messages += 1;
        let sent_at = t;
        let (sn, dn) = (self.cfg.node_of[src], self.cfg.node_of[dst]);
        let t = t + self.cfg.per_message;
        let mut xfer = if sn == dn {
            let done = t + self.cfg.intra.time_for(bytes);
            Xfer {
                sender_free: done,
                arrival: done,
            }
        } else {
            self.inter_node_bytes += bytes;
            let wire = SimDur::transfer(bytes, self.cfg.inter.bandwidth);
            if self.cfg.port_limited {
                let start = t.max(self.adapter_free[sn]).max(self.adapter_free[dn]);
                let busy_until = start + wire;
                self.adapter_free[sn] = busy_until;
                self.adapter_free[dn] = busy_until;
                Xfer {
                    sender_free: busy_until,
                    arrival: busy_until + self.cfg.inter.latency,
                }
            } else {
                Xfer {
                    sender_free: t + wire,
                    arrival: t + self.cfg.inter.latency + wire,
                }
            }
        };
        // Message faults: delivery stays reliable (the MPI layer above
        // assumes it), so a "dropped" message is retransmitted by the
        // adapter and simply arrives late, exactly like a delayed one.
        // Keyed to the submission time so the effect is reproducible.
        if let Some(plan) = &self.faults {
            if let Some(extra) = plan.message_penalty(src, dst, sent_at) {
                xfer.arrival += extra;
            }
        }
        xfer
    }

    /// When the adapter of `ep`'s node becomes free (ZERO if never used or
    /// fabric is not port-limited).
    pub fn adapter_free_at(&self, ep: Endpoint) -> SimTime {
        self.adapter_free[self.cfg.node_of[ep]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(x: f64) -> f64 {
        x * 1.0e6
    }

    #[test]
    fn ccnuma_is_uncontended() {
        let mut n = Net::new(NetConfig::ccnuma(8));
        let a = n.transfer(0, 1, 1_000_000, SimTime::ZERO);
        let b = n.transfer(2, 3, 1_000_000, SimTime::ZERO);
        // Concurrent transfers do not slow each other down.
        assert_eq!(a.arrival, b.arrival);
        let expect = 1.0e6 / mb(180.0);
        assert!((a.arrival.as_secs_f64() - expect).abs() < 1e-4);
    }

    #[test]
    fn ethernet_serializes_on_nic() {
        let mut n = Net::new(NetConfig::fast_ethernet(4));
        // Two messages out of node 0 back-to-back must queue on its NIC.
        let a = n.transfer(0, 1, 1_250_000, SimTime::ZERO);
        let b = n.transfer(0, 2, 1_250_000, SimTime::ZERO);
        assert!(b.arrival > a.arrival);
        let wire = 1_250_000.0 / mb(11.5);
        assert!(b.arrival.as_secs_f64() >= 2.0 * wire);
    }

    #[test]
    fn ethernet_receiver_nic_also_contends() {
        let mut n = Net::new(NetConfig::fast_ethernet(4));
        // Different senders, same receiver: messages serialize at node 3.
        let a = n.transfer(0, 3, 1_250_000, SimTime::ZERO);
        let b = n.transfer(1, 3, 1_250_000, SimTime::ZERO);
        assert!(
            b.arrival.as_secs_f64() >= a.arrival.as_secs_f64() + 0.9 * (1_250_000.0 / mb(11.5))
        );
    }

    #[test]
    fn smp_intra_node_bypasses_adapter() {
        let mut n = Net::new(NetConfig::smp_cluster(16, 8));
        // ranks 0..8 on node 0; 0->1 is shared memory.
        let a = n.transfer(0, 1, 1_000_000, SimTime::ZERO);
        let b = n.transfer(0, 8, 1_000_000, a.sender_free);
        assert!(a.arrival < b.arrival);
        assert_eq!(n.adapter_free_at(0), b.sender_free);
        // intra-node transfer did not touch adapter bookkeeping
        assert_eq!(n.inter_node_bytes, 1_000_000);
    }

    #[test]
    fn extra_endpoints_map_to_io_nodes() {
        let cfg = NetConfig::fast_ethernet(4).with_extra_endpoints(&[4, 5]);
        let n = Net::new(cfg);
        assert_eq!(n.endpoints(), 6);
        assert_eq!(n.node_of(4), 4);
        assert_eq!(n.config().num_nodes(), 6);
    }

    #[test]
    fn transfer_monotone_in_bytes() {
        let mut n = Net::new(NetConfig::smp_cluster(16, 8));
        let small = n.clone().transfer(0, 8, 1_000, SimTime::ZERO).arrival;
        let big = n.transfer(0, 8, 1_000_000, SimTime::ZERO).arrival;
        assert!(big > small);
    }

    #[test]
    fn message_counters_accumulate() {
        let mut n = Net::new(NetConfig::ccnuma(4));
        n.transfer(0, 1, 10, SimTime::ZERO);
        n.transfer(1, 2, 10, SimTime::ZERO);
        assert_eq!(n.messages, 2);
        // ccNUMA: single node, nothing is inter-node.
        assert_eq!(n.inter_node_bytes, 0);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let mut n = Net::new(NetConfig::fast_ethernet(2));
        let x = n.transfer(0, 1, 0, SimTime::ZERO);
        let want = SimDur::from_micros(30) + SimDur::from_micros(120);
        assert_eq!(x.arrival, SimTime::ZERO + want);
    }
}
