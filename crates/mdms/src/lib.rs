//! `amrio-mdms` — a Meta-Data Management System for scientific I/O, the
//! application-level future work the paper names (§5): "using Meta-Data
//! Management System (MDMS) on AMR applications to develop a powerful
//! I/O system with the help of the collected metadata" (Liao, Shen,
//! Choudhary, HiPC 2000).
//!
//! The system keeps a small database of
//!
//! * **dataset records** — name, element type, rank/dims, location
//!   (file + offset) per run;
//! * **access-pattern records** — the §3.1 metadata: whether a dataset
//!   is accessed with a regular `(Block,Block,Block)` partition, an
//!   irregular position-dependent partition, or sequentially, plus
//!   observed request statistics;
//! * **storage hints** derived from them — whether to use collective
//!   two-phase I/O, how many aggregators, whether to sieve, whether to
//!   align file domains.
//!
//! The real MDMS used a relational database server; here the tables are
//! serialized into a file on the simulated parallel file system (the
//! behaviourally relevant property — metadata survives across runs and
//! is queryable before the data is touched — is preserved; see
//! DESIGN.md's substitution rule).

#![forbid(unsafe_code)]

use amrio_mpi::Comm;
use amrio_mpiio::{Hints, Mode, MpiIo, NumType};
use std::collections::BTreeMap;

/// How an application accesses a dataset (the §3.1 classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// n-D array partitioned `(Block, Block, ...)` over a processor mesh.
    RegularBlock,
    /// 1-D arrays partitioned by a data-dependent key (particle
    /// position): block-contiguous in the file, irregular in memory.
    IrregularByKey,
    /// Whole-object access by a single process.
    Sequential,
}

impl AccessPattern {
    fn code(self) -> u8 {
        match self {
            AccessPattern::RegularBlock => 0,
            AccessPattern::IrregularByKey => 1,
            AccessPattern::Sequential => 2,
        }
    }

    fn from_code(c: u8) -> AccessPattern {
        match c {
            0 => AccessPattern::RegularBlock,
            1 => AccessPattern::IrregularByKey,
            2 => AccessPattern::Sequential,
            _ => panic!("bad AccessPattern code {c}"),
        }
    }
}

/// One dataset's registered metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetRecord {
    pub name: String,
    pub numtype: NumType,
    pub dims: Vec<u64>,
    /// Where the data lives: checkpoint path and byte offset.
    pub file: String,
    pub offset: u64,
    pub pattern: AccessPattern,
    /// Observed requests when the pattern was recorded.
    pub observed_requests: u64,
    pub observed_bytes: u64,
}

impl DatasetRecord {
    pub fn bytes(&self) -> u64 {
        self.dims.iter().product::<u64>() * self.numtype.size()
    }

    pub fn mean_request(&self) -> u64 {
        self.observed_bytes
            .checked_div(self.observed_requests)
            .unwrap_or(0)
    }
}

/// The advice the MDMS derives from a dataset's metadata (what the paper
/// calls "the proper optimal I/O strategies ... determined with the help
/// of these metadata").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoAdvice {
    /// Use collective two-phase I/O (vs independent access).
    pub collective: bool,
    /// Suggested number of aggregators (None = every rank).
    pub cb_nodes: Option<usize>,
    /// Enable data sieving for noncontiguous independent reads.
    pub sieve_reads: bool,
    /// Align collective file domains to the file system stripe.
    pub align_domains: bool,
    /// Route tiny datasets through one reader + broadcast.
    pub root_and_broadcast: bool,
}

impl IoAdvice {
    pub fn apply_to(&self, hints: &mut Hints) {
        hints.cb_nodes = self.cb_nodes;
        hints.ds_read = self.sieve_reads;
        hints.align_file_domains = self.align_domains;
    }
}

/// The metadata database: a sorted name -> record table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MdmsDb {
    records: BTreeMap<String, DatasetRecord>,
}

const MAGIC: &[u8; 4] = b"MDM\x01";

impl MdmsDb {
    pub fn new() -> MdmsDb {
        MdmsDb::default()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Register (or replace) a dataset record.
    pub fn register(&mut self, rec: DatasetRecord) {
        self.records.insert(rec.name.clone(), rec);
    }

    pub fn lookup(&self, name: &str) -> Option<&DatasetRecord> {
        self.records.get(name)
    }

    pub fn datasets(&self) -> impl Iterator<Item = &DatasetRecord> {
        self.records.values()
    }

    /// Update observed access statistics for a dataset.
    pub fn record_access(&mut self, name: &str, requests: u64, bytes: u64) {
        if let Some(r) = self.records.get_mut(name) {
            r.observed_requests += requests;
            r.observed_bytes += bytes;
        }
    }

    /// Derive I/O advice for a dataset from its pattern and statistics —
    /// the decision procedure §3.1/§3.2 of the paper applies by hand.
    pub fn advise(&self, name: &str, nranks: usize, nservers: usize) -> Option<IoAdvice> {
        let r = self.records.get(name)?;
        let tiny = r.bytes() < 64 * 1024;
        Some(match r.pattern {
            AccessPattern::RegularBlock => IoAdvice {
                collective: true,
                // Enough aggregators to cover the servers without
                // flooding them (two streams per server works well on
                // every platform model).
                cb_nodes: Some(nranks.min((2 * nservers).max(1))),
                sieve_reads: true,
                align_domains: true,
                root_and_broadcast: false,
            },
            AccessPattern::IrregularByKey => IoAdvice {
                // Block-wise 1-D access is contiguous per rank: the paper
                // keeps it independent (non-collective).
                collective: false,
                cb_nodes: None,
                sieve_reads: true,
                align_domains: true,
                root_and_broadcast: false,
            },
            AccessPattern::Sequential => IoAdvice {
                collective: false,
                cb_nodes: None,
                sieve_reads: false,
                align_domains: false,
                root_and_broadcast: tiny,
            },
        })
    }

    /// Serialize the tables.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in self.records.values() {
            let put_str = |out: &mut Vec<u8>, s: &str| {
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            };
            put_str(&mut out, &r.name);
            out.push(r.numtype.code());
            out.push(r.dims.len() as u8);
            for d in &r.dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            put_str(&mut out, &r.file);
            out.extend_from_slice(&r.offset.to_le_bytes());
            out.push(r.pattern.code());
            out.extend_from_slice(&r.observed_requests.to_le_bytes());
            out.extend_from_slice(&r.observed_bytes.to_le_bytes());
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> MdmsDb {
        assert_eq!(&data[..4], MAGIC, "not an MDMS database");
        let mut p = 4usize;
        let rd_u16 = |p: &mut usize| {
            let v = u16::from_le_bytes(data[*p..*p + 2].try_into().unwrap());
            *p += 2;
            v as usize
        };
        let rd_u64 = |p: &mut usize| {
            let v = u64::from_le_bytes(data[*p..*p + 8].try_into().unwrap());
            *p += 8;
            v
        };
        let count = u32::from_le_bytes(data[p..p + 4].try_into().unwrap());
        p += 4;
        let mut db = MdmsDb::new();
        for _ in 0..count {
            let nl = rd_u16(&mut p);
            let name = String::from_utf8(data[p..p + nl].to_vec()).unwrap();
            p += nl;
            let numtype = NumType::from_code(data[p]);
            p += 1;
            let rank = data[p] as usize;
            p += 1;
            let dims: Vec<u64> = (0..rank).map(|_| rd_u64(&mut p)).collect();
            let fl = rd_u16(&mut p);
            let file = String::from_utf8(data[p..p + fl].to_vec()).unwrap();
            p += fl;
            let offset = rd_u64(&mut p);
            let pattern = AccessPattern::from_code(data[p]);
            p += 1;
            let observed_requests = rd_u64(&mut p);
            let observed_bytes = rd_u64(&mut p);
            db.register(DatasetRecord {
                name,
                numtype,
                dims,
                file,
                offset,
                pattern,
                observed_requests,
                observed_bytes,
            });
        }
        db
    }

    /// Collectively persist the database: rank 0 writes, everyone syncs.
    pub fn flush(&self, comm: &Comm, io: &MpiIo, path: &str) {
        if comm.rank() == 0 {
            let f = io.open_single(comm, path, Mode::Create);
            f.write_at(0, &self.to_bytes());
        }
        comm.barrier();
    }

    /// Collectively load the database: rank 0 reads, then broadcasts.
    pub fn load(comm: &Comm, io: &MpiIo, path: &str) -> MdmsDb {
        let bytes = if comm.rank() == 0 {
            let f = io.open_single(comm, path, Mode::Open);
            let size = f.size();
            f.read_at(0, size)
        } else {
            Vec::new()
        };
        let bytes = comm.bcast(0, bytes);
        MdmsDb::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrio_disk::{DiskParams, FsConfig, Placement};
    use amrio_mpi::World;
    use amrio_net::NetConfig;
    use amrio_simt::SimDur;

    fn rec(name: &str, pattern: AccessPattern, dims: &[u64]) -> DatasetRecord {
        DatasetRecord {
            name: name.into(),
            numtype: NumType::F32,
            dims: dims.to_vec(),
            file: "DD0000.cpio".into(),
            offset: 64,
            pattern,
            observed_requests: 0,
            observed_bytes: 0,
        }
    }

    #[test]
    fn register_lookup_and_stats() {
        let mut db = MdmsDb::new();
        db.register(rec("density", AccessPattern::RegularBlock, &[64, 64, 64]));
        db.record_access("density", 10, 1000);
        db.record_access("density", 5, 500);
        let r = db.lookup("density").unwrap();
        assert_eq!(r.observed_requests, 15);
        assert_eq!(r.mean_request(), 100);
        assert_eq!(r.bytes(), 64 * 64 * 64 * 4);
        assert!(db.lookup("ghost").is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut db = MdmsDb::new();
        db.register(rec("density", AccessPattern::RegularBlock, &[8, 8, 8]));
        db.register(rec("particle_id", AccessPattern::IrregularByKey, &[1000]));
        db.register(rec("hierarchy", AccessPattern::Sequential, &[100]));
        db.record_access("density", 3, 333);
        let db2 = MdmsDb::from_bytes(&db.to_bytes());
        assert_eq!(db, db2);
    }

    #[test]
    fn advice_matches_paper_decisions() {
        let mut db = MdmsDb::new();
        db.register(rec("density", AccessPattern::RegularBlock, &[64, 64, 64]));
        db.register(rec("particle_id", AccessPattern::IrregularByKey, &[262144]));
        db.register(rec("hierarchy", AccessPattern::Sequential, &[100]));

        let a = db.advise("density", 32, 4).unwrap();
        assert!(a.collective, "regular BBB arrays use collective I/O");
        assert_eq!(a.cb_nodes, Some(8));
        assert!(a.align_domains);

        let b = db.advise("particle_id", 32, 4).unwrap();
        assert!(!b.collective, "block-wise 1-D access stays independent");
        assert!(b.sieve_reads);

        let c = db.advise("hierarchy", 32, 4).unwrap();
        assert!(
            c.root_and_broadcast,
            "tiny sequential data: read once, broadcast"
        );

        assert!(db.advise("nope", 32, 4).is_none());
    }

    #[test]
    fn advice_applies_to_hints() {
        let mut db = MdmsDb::new();
        db.register(rec("density", AccessPattern::RegularBlock, &[64, 64, 64]));
        let a = db.advise("density", 16, 8).unwrap();
        let mut h = Hints::default();
        a.apply_to(&mut h);
        assert_eq!(h.cb_nodes, Some(16));
        assert!(h.align_file_domains);
    }

    #[test]
    fn flush_and_load_through_simulated_fs() {
        let fs = FsConfig {
            label: "t".into(),
            stripe: 64 * 1024,
            nservers: 2,
            disk: DiskParams::new(100, 2, 100.0),
            server_endpoints: None,
            placement: Placement::Striped,
            lock_block: None,
            token_cost: SimDur::ZERO,
            client_queue_cost: None,
            single_stream_bw: None,
        };
        let w = World::new(4, NetConfig::ccnuma(4));
        let io = MpiIo::new(fs);
        let ok = w.run(|c| {
            let mut db = MdmsDb::new();
            db.register(rec("density", AccessPattern::RegularBlock, &[16, 16, 16]));
            db.flush(c, &io, ".mdms");
            let loaded = MdmsDb::load(c, &io, ".mdms");
            loaded == db
        });
        assert!(ok.results.iter().all(|x| *x));
    }

    #[test]
    #[should_panic(expected = "not an MDMS database")]
    fn bad_magic_rejected() {
        MdmsDb::from_bytes(b"XXXX\0\0\0\0");
    }
}
