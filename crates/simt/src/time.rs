//! Virtual time for the discrete-event engine.
//!
//! Time is kept in integer nanoseconds so that arithmetic is exact and runs
//! are bit-reproducible; floating-point seconds are only used at the
//! boundaries (cost models, reports).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of simulated time, in nanoseconds since the start of
/// the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, clamped to the end of virtual time instead of
    /// overflowing. Use wherever `d` can be adversarially large (e.g.
    /// saturated retry backoffs).
    pub fn saturating_add(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDur {
    pub const ZERO: SimDur = SimDur(0);

    pub fn from_secs_f64(s: f64) -> SimDur {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative: {s}"
        );
        SimDur((s * 1e9).round() as u64)
    }

    pub fn from_micros(us: u64) -> SimDur {
        SimDur(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> SimDur {
        SimDur(ms * 1_000_000)
    }

    pub fn from_nanos(ns: u64) -> SimDur {
        SimDur(ns)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to whole ns.
    pub fn transfer(bytes: u64, bytes_per_sec: f64) -> SimDur {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        SimDur(((bytes as f64 / bytes_per_sec) * 1e9).ceil() as u64)
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, o: SimDur) -> SimDur {
        SimDur(self.0 + o.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, o: SimDur) {
        self.0 += o.0;
    }
}

impl Sub for SimTime {
    type Output = SimDur;
    fn sub(self, o: SimTime) -> SimDur {
        SimDur(
            self.0
                .checked_sub(o.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        SimDur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_compare() {
        let t = SimTime::ZERO + SimDur::from_micros(3);
        assert_eq!(t, SimTime(3_000));
        assert!(t > SimTime::ZERO);
        assert_eq!(t - SimTime::ZERO, SimDur(3_000));
    }

    #[test]
    fn transfer_rounds_up() {
        // 10 bytes at 3 B/s = 3.333..s -> ceil to ns
        let d = SimDur::transfer(10, 3.0);
        assert!(d.as_secs_f64() >= 10.0 / 3.0);
        assert!(d.as_secs_f64() < 10.0 / 3.0 + 1e-6);
    }

    #[test]
    fn from_secs_roundtrip() {
        let d = SimDur::from_secs_f64(1.5);
        assert_eq!(d.0, 1_500_000_000);
        assert_eq!(d.as_secs_f64(), 1.5);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(b.saturating_since(a), SimDur(4));
        assert_eq!(a.saturating_since(b), SimDur::ZERO);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(SimTime(5).saturating_add(SimDur(4)), SimTime(9));
        assert_eq!(
            SimTime(2).saturating_add(SimDur(u64::MAX)),
            SimTime(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }
}
