//! The cooperative virtual-time engine.
//!
//! Each simulated processor ("rank") runs as a real OS thread carrying a
//! *virtual clock*. Pure local work runs in parallel and just advances the
//! rank's own clock. Whenever a rank needs to interact with shared
//! simulation state (mailboxes, disks, NIC ports, ...) it enters an
//! [`Ctx::ordered`] section, which the scheduler grants strictly in
//! `(clock, rank)` priority order: a rank may enter only when no other
//! live, unparked rank could still produce an earlier-priority event.
//! Because every contended resource is only touched inside ordered
//! sections, resource queues observe requests in nondecreasing virtual
//! time and the whole run is deterministic regardless of how the OS
//! schedules the threads.
//!
//! Blocking (e.g. a receive with no matching message) uses
//! [`Ctx::park`] / [`Ctx::unpark`] with one-shot permit semantics, so a
//! wake that races ahead of the sleep is never lost. Parked ranks are
//! excluded from the priority minimum; this is safe because a parked rank
//! can only be woken from inside another rank's ordered section, which
//! itself obeys the priority order, so the wakee's next event can never
//! travel back before events already granted.

use crate::sync::{Condvar, Mutex};
use crate::time::{SimDur, SimTime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A processor index in `0..nranks`.
pub type Rank = usize;

/// A fault hook consulted on every local clock advance. Installed via
/// [`run_with_hook`]; used to model per-rank compute stragglers by
/// dilating a rank's own work. Only [`Ctx::advance`] is hooked —
/// [`Ctx::advance_to`] (waiting for an interaction to complete) is not,
/// so a straggler slows down its own computation without inflating the
/// completion times of resources it merely waits on.
///
/// Implementations must be deterministic functions of `(rank, now, d)`
/// plus their own fixed schedule: the engine calls the hook under the
/// scheduler lock, in the same order on every run.
pub trait ClockHook: Send + Sync {
    fn dilate(&self, rank: Rank, now: SimTime, d: SimDur) -> SimDur;
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RankState {
    /// Running local work (or not yet at a yield point).
    Free,
    /// Waiting to be granted an ordered section.
    WaitingOrdered,
    /// Inside an ordered section (exactly one rank at a time).
    OrderedRunning,
    /// Parked until another rank calls `unpark`.
    Parked,
    /// The rank closure returned (or panicked).
    Done,
}

struct Sched {
    clocks: Vec<SimTime>,
    state: Vec<RankState>,
    /// One-shot wake permits: `Some(t)` means a pending `unpark` at time `t`.
    permits: Vec<Option<SimTime>>,
    /// True while some rank is inside an ordered closure.
    ordered_busy: bool,
    /// Set when a rank panicked; everyone else unwinds promptly.
    poisoned: bool,
}

impl Sched {
    /// The highest-priority live rank: smallest `(clock, rank)` among ranks
    /// that are Free, WaitingOrdered or OrderedRunning. Parked and Done
    /// ranks cannot produce events until acted upon by someone else.
    fn min_priority(&self) -> Option<(SimTime, Rank)> {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(
                    s,
                    RankState::Free | RankState::WaitingOrdered | RankState::OrderedRunning
                )
            })
            .map(|(r, _)| (self.clocks[r], r))
            .min()
    }

    fn dump(&self) -> String {
        let mut s = String::new();
        for r in 0..self.state.len() {
            s.push_str(&format!(
                "  rank {r}: {:?} at {:?} permit={:?}\n",
                self.state[r], self.clocks[r], self.permits[r]
            ));
        }
        s
    }
}

struct Shared {
    sched: Mutex<Sched>,
    cv: Condvar,
    ordered_ops: AtomicU64,
    hook: Option<Arc<dyn ClockHook>>,
}

/// Per-rank handle passed to the rank closure; all engine services go
/// through it.
pub struct Ctx {
    rank: Rank,
    nranks: usize,
    shared: Arc<Shared>,
}

/// Raised (via panic payload) when the engine detects that every live rank
/// is parked, i.e. the simulated program deadlocked.
#[derive(Debug)]
pub struct Deadlock(pub String);

impl Ctx {
    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// This rank's current virtual clock.
    pub fn now(&self) -> SimTime {
        self.shared.sched.lock().clocks[self.rank]
    }

    /// Charge `d` of local computation to this rank.
    pub fn advance(&self, d: SimDur) {
        if d == SimDur::ZERO {
            return;
        }
        let mut g = self.shared.sched.lock();
        self.check_poison(&g);
        let d = match &self.shared.hook {
            Some(h) => h.dilate(self.rank, g.clocks[self.rank], d),
            None => d,
        };
        g.clocks[self.rank] += d;
        // Our clock moving forward may make another rank the unique minimum.
        drop(g);
        self.shared.cv.notify_all();
    }

    /// Move this rank's clock forward to at least `t` (no-op if already
    /// past). Used when an interaction's effect completes at `t`.
    pub fn advance_to(&self, t: SimTime) {
        let mut g = self.shared.sched.lock();
        self.check_poison(&g);
        if g.clocks[self.rank] < t {
            g.clocks[self.rank] = t;
            drop(g);
            self.shared.cv.notify_all();
        }
    }

    fn check_poison(&self, g: &Sched) {
        if g.poisoned {
            panic!("peer rank panicked; unwinding rank {}", self.rank);
        }
    }

    /// Run `f` when this rank holds the global `(clock, rank)` minimum among
    /// live unparked ranks and no other ordered section is in flight.
    ///
    /// `f` receives the rank's clock on entry and returns the clock the rank
    /// should hold afterwards together with a result; typically the
    /// completion time of the interaction. Shared simulation state must only
    /// be touched from inside ordered sections.
    pub fn ordered<R>(&self, f: impl FnOnce(SimTime) -> (SimTime, R)) -> R {
        let me = self.rank;
        let mut g = self.shared.sched.lock();
        self.check_poison(&g);
        debug_assert_eq!(g.state[me], RankState::Free, "nested ordered section");
        g.state[me] = RankState::WaitingOrdered;
        loop {
            self.check_poison(&g);
            let min = g.min_priority().expect("no live ranks in ordered wait");
            if !g.ordered_busy && min == (g.clocks[me], me) {
                break;
            }
            self.shared.cv.wait(&mut g);
        }
        g.state[me] = RankState::OrderedRunning;
        g.ordered_busy = true;
        let t0 = g.clocks[me];
        drop(g);

        self.shared.ordered_ops.fetch_add(1, Ordering::Relaxed);
        let out = catch_unwind(AssertUnwindSafe(|| f(t0)));

        let mut g = self.shared.sched.lock();
        g.ordered_busy = false;
        g.state[me] = RankState::Free;
        match out {
            Ok((t1, r)) => {
                assert!(t1 >= t0, "ordered section moved time backwards");
                g.clocks[me] = t1;
                drop(g);
                self.shared.cv.notify_all();
                r
            }
            Err(payload) => {
                g.poisoned = true;
                drop(g);
                self.shared.cv.notify_all();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Convenience: an ordered section that leaves the clock unchanged.
    pub fn ordered_read<R>(&self, f: impl FnOnce(SimTime) -> R) -> R {
        self.ordered(|t| (t, f(t)))
    }

    /// Park this rank until some other rank calls [`Ctx::unpark`] on it.
    /// Returns the rank's clock after waking (at least the wake time the
    /// waker supplied). A permit posted before `park` is consumed
    /// immediately, so wake-ups are never lost.
    pub fn park(&self) -> SimTime {
        let me = self.rank;
        let mut g = self.shared.sched.lock();
        self.check_poison(&g);
        if let Some(t) = g.permits[me].take() {
            if g.clocks[me] < t {
                g.clocks[me] = t;
            }
            let now = g.clocks[me];
            drop(g);
            self.shared.cv.notify_all();
            return now;
        }
        g.state[me] = RankState::Parked;
        // Our parking may unblock an ordered waiter.
        self.shared.cv.notify_all();
        loop {
            // Deadlock check: nobody can make progress if every live rank
            // is parked.
            if g.state
                .iter()
                .all(|s| matches!(s, RankState::Parked | RankState::Done))
            {
                let dump = g.dump();
                g.poisoned = true;
                drop(g);
                self.shared.cv.notify_all();
                panic!("simulated deadlock: all live ranks parked\n{dump}");
            }
            self.shared.cv.wait(&mut g);
            self.check_poison(&g);
            if g.state[me] == RankState::Free {
                break;
            }
        }
        let now = g.clocks[me];
        drop(g);
        self.shared.cv.notify_all();
        now
    }

    /// Wake `target` (or post a permit if it has not parked yet), with its
    /// clock raised to at least `at`. Call this from inside an ordered
    /// section so wakes obey the global event order.
    pub fn unpark(&self, target: Rank, at: SimTime) {
        let mut g = self.shared.sched.lock();
        match g.state[target] {
            RankState::Parked => {
                if g.clocks[target] < at {
                    g.clocks[target] = at;
                }
                g.state[target] = RankState::Free;
                drop(g);
                self.shared.cv.notify_all();
            }
            RankState::Done => panic!("unpark of finished rank {target}"),
            _ => {
                let p = g.permits[target].get_or_insert(at);
                if *p < at {
                    *p = at;
                }
            }
        }
    }
}

/// Outcome of a simulation run.
#[derive(Debug)]
pub struct SimReport<T> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<T>,
    /// The largest final clock over all ranks — the simulated makespan.
    pub makespan: SimTime,
    /// Number of ordered sections executed (a proxy for event count).
    pub ordered_ops: u64,
}

/// Run `nranks` copies of `f` (one per rank) to completion under the
/// virtual-time scheduler and collect their results.
///
/// Panics if any rank panics (including simulated deadlock), propagating
/// the first panic payload.
pub fn run<T, F>(nranks: usize, f: F) -> SimReport<T>
where
    T: Send,
    F: Fn(&Ctx) -> T + Sync,
{
    run_with_hook(nranks, None, f)
}

/// [`run`], with an optional [`ClockHook`] dilating local advances
/// (e.g. a fault plan's compute stragglers). `run(n, f)` is exactly
/// `run_with_hook(n, None, f)`.
pub fn run_with_hook<T, F>(nranks: usize, hook: Option<Arc<dyn ClockHook>>, f: F) -> SimReport<T>
where
    T: Send,
    F: Fn(&Ctx) -> T + Sync,
{
    assert!(nranks > 0, "need at least one rank");
    let shared = Arc::new(Shared {
        sched: Mutex::new(Sched {
            clocks: vec![SimTime::ZERO; nranks],
            state: vec![RankState::Free; nranks],
            permits: vec![None; nranks],
            ordered_busy: false,
            poisoned: false,
        }),
        cv: Condvar::new(),
        ordered_ops: AtomicU64::new(0),
        hook,
    });

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let ctx = Ctx {
                rank,
                nranks,
                shared: Arc::clone(&shared),
            };
            let f = &f;
            handles.push(s.spawn(move || {
                let out = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                let mut g = ctx.shared.sched.lock();
                g.state[rank] = RankState::Done;
                if out.is_err() {
                    g.poisoned = true;
                }
                drop(g);
                ctx.shared.cv.notify_all();
                out
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join().expect("rank thread itself must not die") {
                Ok(v) => results[rank] = Some(v),
                Err(p) => {
                    // Prefer the root-cause panic over the secondary
                    // "peer rank panicked" unwinds it triggers in peers.
                    let secondary = p
                        .downcast_ref::<String>()
                        .is_some_and(|m| m.contains("peer rank panicked"));
                    if (first_panic.is_none() || !secondary)
                        && first_panic
                            .as_ref()
                            .map(|q| {
                                q.downcast_ref::<String>()
                                    .is_some_and(|m| m.contains("peer rank panicked"))
                            })
                            .unwrap_or(true)
                    {
                        first_panic = Some(p);
                    }
                }
            }
        }
    });

    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }

    let g = shared.sched.lock();
    let makespan = g.clocks.iter().copied().max().unwrap_or(SimTime::ZERO);
    drop(g);
    SimReport {
        results: results.into_iter().map(|r| r.unwrap()).collect(),
        makespan,
        ordered_ops: shared.ordered_ops.load(Ordering::Relaxed),
    }
}
