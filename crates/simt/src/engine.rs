//! The event-driven virtual-time executor.
//!
//! Each simulated processor ("rank") runs as a real OS thread carrying a
//! *virtual clock*. Pure local work runs in parallel and just advances the
//! rank's own clock. Whenever a rank needs to interact with shared
//! simulation state (mailboxes, disks, NIC ports, ...) it enters an
//! [`Ctx::ordered`] section, which the scheduler grants strictly in
//! `(clock, rank)` priority order: a rank may enter only when no other
//! live, unparked rank could still produce an earlier-priority event.
//! Because every contended resource is only touched inside ordered
//! sections, resource queues observe requests in nondecreasing virtual
//! time and the whole run is deterministic regardless of how the OS
//! schedules the threads.
//!
//! The scheduler is built for worlds of hundreds to thousands of ranks:
//!
//! * **Priority index.** Live unparked ranks are kept in a tournament
//!   tree keyed by `(clock, rank)`, so the next grantable rank is found
//!   in O(log n) per update instead of an O(n) scan per wait-loop
//!   iteration. Parked and Done ranks are absent from the index: a
//!   parked rank can only be woken from inside another rank's ordered
//!   section, which itself obeys the priority order, so the wakee's
//!   next event can never travel back before events already granted.
//! * **Targeted handoff.** Every rank sleeps on its own condition
//!   variable. Whenever the scheduler state changes (an ordered section
//!   ends, a clock moves past a waiter, a rank parks or finishes), the
//!   engine computes the unique next grantable rank and wakes exactly
//!   that thread — no broadcast storms. Wakeups are only hints: the
//!   grant decision itself is always re-evaluated by the woken rank
//!   under the scheduler lock, which is what preserves the exact
//!   `(clock, rank)` grant order of the original scan-based scheduler.
//! * **Lock-light clocks.** Per-rank clocks live in atomics, so
//!   [`Ctx::now`] never takes the scheduler lock and [`Ctx::advance`]
//!   skips it entirely while no rank is waiting for an ordered grant
//!   (a SeqCst store/load pair makes the skip race-free: either the
//!   advancing rank sees the waiter and publishes its new key under the
//!   lock, or the waiter's grant check sees the advanced clock and
//!   refreshes the stale index entry itself).
//!
//! Blocking (e.g. a receive with no matching message) uses
//! [`Ctx::park`] / [`Ctx::unpark`] with one-shot permit semantics, so a
//! wake that races ahead of the sleep is never lost.

use crate::sync::{Condvar, Mutex, MutexGuard};
use crate::time::{SimDur, SimTime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A processor index in `0..nranks`.
pub type Rank = usize;

/// A fault hook consulted on every local clock advance. Installed via
/// [`run_with_hook`]; used to model per-rank compute stragglers by
/// dilating a rank's own work. Only [`Ctx::advance`] is hooked —
/// [`Ctx::advance_to`] (waiting for an interaction to complete) is not,
/// so a straggler slows down its own computation without inflating the
/// completion times of resources it merely waits on.
///
/// Implementations must be deterministic functions of `(rank, now, d)`
/// plus their own fixed schedule: ranks advance concurrently, so the
/// engine gives no cross-rank ordering guarantee for hook calls (each
/// rank's own calls are ordered, and run under the scheduler lock).
pub trait ClockHook: Send + Sync {
    fn dilate(&self, rank: Rank, now: SimTime, d: SimDur) -> SimDur;
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RankState {
    /// Running local work (or not yet at a yield point).
    Free,
    /// Waiting to be granted an ordered section.
    WaitingOrdered,
    /// Inside an ordered section (exactly one rank at a time).
    OrderedRunning,
    /// Parked until another rank calls `unpark`.
    Parked,
    /// The rank closure returned (or panicked).
    Done,
}

impl RankState {
    /// States tracked by the priority index: ranks that could still
    /// produce an event on their own. Parked and Done ranks cannot act
    /// until acted upon by someone else.
    fn indexed(self) -> bool {
        matches!(
            self,
            RankState::Free | RankState::WaitingOrdered | RankState::OrderedRunning
        )
    }
}

/// Index key for a rank that is absent (parked or done): sorts after
/// every real `(clock, rank)` key.
const ABSENT: (SimTime, Rank) = (SimTime(u64::MAX), usize::MAX);

/// Tournament tree over `(clock, rank)` keys: `min()` in O(1), `set()`
/// in O(log n). Leaves hold one key per rank (or [`ABSENT`]); each
/// internal node holds the minimum of its children.
struct PriorityIndex {
    /// First leaf slot; rank `r`'s leaf lives at `base + r`.
    base: usize,
    /// 1-based complete binary tree; `tree[1]` is the global minimum.
    tree: Vec<(SimTime, Rank)>,
}

impl PriorityIndex {
    fn new(nranks: usize) -> PriorityIndex {
        let base = nranks.next_power_of_two();
        let mut idx = PriorityIndex {
            base,
            tree: vec![ABSENT; 2 * base],
        };
        for r in 0..nranks {
            idx.tree[base + r] = (SimTime::ZERO, r);
        }
        for i in (1..base).rev() {
            idx.tree[i] = idx.tree[2 * i].min(idx.tree[2 * i + 1]);
        }
        idx
    }

    /// Set `rank`'s key, repairing ancestors; returns whether the leaf
    /// actually changed.
    fn set(&mut self, rank: Rank, key: (SimTime, Rank)) -> bool {
        let mut i = self.base + rank;
        if self.tree[i] == key {
            return false;
        }
        self.tree[i] = key;
        while i > 1 {
            i /= 2;
            let m = self.tree[2 * i].min(self.tree[2 * i + 1]);
            if self.tree[i] == m {
                break;
            }
            self.tree[i] = m;
        }
        true
    }

    /// The smallest `(clock, rank)` among indexed ranks, if any.
    fn min(&self) -> Option<(SimTime, Rank)> {
        let k = self.tree[1];
        (k != ABSENT).then_some(k)
    }
}

struct Sched {
    state: Vec<RankState>,
    /// One-shot wake permits: `Some(t)` means a pending `unpark` at time `t`.
    permits: Vec<Option<SimTime>>,
    /// True while some rank is inside an ordered closure.
    ordered_busy: bool,
    /// Ranks in an indexed state; deadlock means this hits zero while
    /// parked ranks remain.
    live_unparked: usize,
    /// `(clock, rank)` tournament tree over live unparked ranks. A Free
    /// rank's key may lag its atomic clock (lock-free advances); the
    /// grant check repairs such entries on sight, so keys are only ever
    /// stale-*low*, which can delay a grant but never reorder one.
    index: PriorityIndex,
    // Contention counters, folded into [`SchedStats`] after the run.
    wakeups: u64,
    handoffs: u64,
    index_updates: u64,
}

struct Shared {
    sched: Mutex<Sched>,
    /// One condvar per rank (all paired with `sched`): targeted wakeups
    /// reach exactly the thread that can act.
    cvs: Vec<Condvar>,
    /// Per-rank virtual clocks, readable without the scheduler lock.
    clocks: Vec<AtomicU64>,
    /// Set when a rank panicked; everyone else unwinds promptly.
    poisoned: AtomicBool,
    /// Ranks currently in `WaitingOrdered`. SeqCst-paired with clock
    /// stores so the lock-free advance path can skip index maintenance
    /// exactly when nobody could be blocked on this rank's clock.
    nwaiting: AtomicUsize,
    lock_acquisitions: AtomicU64,
    ordered_ops: AtomicU64,
    hook: Option<Arc<dyn ClockHook>>,
}

impl Shared {
    fn sched(&self) -> MutexGuard<'_, Sched> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.sched.lock()
    }

    fn clock(&self, rank: Rank) -> SimTime {
        SimTime(self.clocks[rank].load(Ordering::SeqCst))
    }

    fn set_clock(&self, rank: Rank, t: SimTime) {
        self.clocks[rank].store(t.0, Ordering::SeqCst);
    }

    /// Re-key `rank` from its atomic clock (no-op for unindexed states).
    fn refresh_key(&self, g: &mut Sched, rank: Rank) {
        if g.state[rank].indexed() && g.index.set(rank, (self.clock(rank), rank)) {
            g.index_updates += 1;
        }
    }

    /// The unique rank that may enter an ordered section right now, if
    /// any: the index minimum, provided it is a waiting rank and no
    /// ordered section is in flight. Stale-low keys left by lock-free
    /// advances are repaired along the way.
    fn next_grant(&self, g: &mut Sched) -> Option<Rank> {
        if g.ordered_busy {
            return None;
        }
        loop {
            let (t, r) = g.index.min()?;
            let actual = self.clock(r);
            if actual > t {
                if g.index.set(r, (actual, r)) {
                    g.index_updates += 1;
                }
                continue;
            }
            return (g.state[r] == RankState::WaitingOrdered).then_some(r);
        }
    }

    /// Direct handoff: wake exactly the next grantable rank, if there is
    /// one. The wakee re-checks the grant under the lock, so a redundant
    /// wake is harmless and a missing one is what must never happen —
    /// every state change that could enable a grant calls this.
    fn wake_next(&self, g: &mut Sched) {
        if let Some(r) = self.next_grant(g) {
            g.handoffs += 1;
            g.wakeups += 1;
            self.cvs[r].notify_one();
        }
    }

    /// Flag the run as poisoned and wake every thread so it can unwind.
    fn poison(&self, g: &mut Sched) {
        self.poisoned.store(true, Ordering::SeqCst);
        g.wakeups += self.cvs.len() as u64;
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    fn dump(&self, g: &Sched) -> String {
        let mut s = String::new();
        for r in 0..g.state.len() {
            s.push_str(&format!(
                "  rank {r}: {:?} at {:?} permit={:?}\n",
                g.state[r],
                self.clock(r),
                g.permits[r]
            ));
        }
        s
    }
}

/// Per-rank handle passed to the rank closure; all engine services go
/// through it.
pub struct Ctx {
    rank: Rank,
    nranks: usize,
    shared: Arc<Shared>,
}

/// Panic payload raised when the engine detects that every live rank is
/// parked, i.e. the simulated program deadlocked. Carries the full
/// per-rank state dump (state, clock, pending permit).
#[derive(Debug)]
pub struct Deadlock(pub String);

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Ctx {
    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// This rank's current virtual clock. Lock-free.
    pub fn now(&self) -> SimTime {
        self.shared.clock(self.rank)
    }

    /// Charge `d` of local computation to this rank.
    ///
    /// Lock-free while no rank is waiting for an ordered grant; takes
    /// the scheduler lock only to publish the new priority key (and hand
    /// the grant over) when someone may be blocked behind this clock.
    pub fn advance(&self, d: SimDur) {
        if d == SimDur::ZERO {
            return;
        }
        self.check_poison();
        let me = self.rank;
        if let Some(hook) = &self.shared.hook {
            // Hooked (fault-injection) runs keep the locked path:
            // `dilate` may account straggler time into plan statistics.
            let mut g = self.shared.sched();
            let now = self.shared.clock(me);
            let d = hook.dilate(me, now, d);
            self.shared.set_clock(me, now + d);
            self.shared.refresh_key(&mut g, me);
            self.shared.wake_next(&mut g);
            return;
        }
        self.shared.set_clock(me, self.shared.clock(me) + d);
        if self.shared.nwaiting.load(Ordering::SeqCst) == 0 {
            // Nobody can be blocked behind our clock: the SeqCst
            // store/load pair guarantees any waiter registering
            // concurrently will read the advanced clock when it
            // evaluates its grant.
            return;
        }
        let mut g = self.shared.sched();
        self.shared.refresh_key(&mut g, me);
        self.shared.wake_next(&mut g);
    }

    /// Move this rank's clock forward to at least `t` (no-op if already
    /// past). Used when an interaction's effect completes at `t`.
    pub fn advance_to(&self, t: SimTime) {
        self.check_poison();
        let me = self.rank;
        if self.shared.clock(me) >= t {
            return;
        }
        self.shared.set_clock(me, t);
        if self.shared.nwaiting.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut g = self.shared.sched();
        self.shared.refresh_key(&mut g, me);
        self.shared.wake_next(&mut g);
    }

    fn check_poison(&self) {
        if self.shared.poisoned.load(Ordering::SeqCst) {
            panic!("peer rank panicked; unwinding rank {}", self.rank);
        }
    }

    /// Run `f` when this rank holds the global `(clock, rank)` minimum among
    /// live unparked ranks and no other ordered section is in flight.
    ///
    /// `f` receives the rank's clock on entry and returns the clock the rank
    /// should hold afterwards together with a result; typically the
    /// completion time of the interaction. Shared simulation state must only
    /// be touched from inside ordered sections.
    pub fn ordered<R>(&self, f: impl FnOnce(SimTime) -> (SimTime, R)) -> R {
        let me = self.rank;
        let mut g = self.shared.sched();
        self.check_poison();
        debug_assert_eq!(g.state[me], RankState::Free, "nested ordered section");
        g.state[me] = RankState::WaitingOrdered;
        // Lock-free advances may have left our key stale; raising it can
        // also make *another* waiter the new minimum — hand over below.
        self.shared.refresh_key(&mut g, me);
        self.shared.nwaiting.fetch_add(1, Ordering::SeqCst);
        loop {
            match self.shared.next_grant(&mut g) {
                Some(r) if r == me => break,
                Some(r) => {
                    g.handoffs += 1;
                    g.wakeups += 1;
                    self.shared.cvs[r].notify_one();
                    self.shared.cvs[me].wait(&mut g);
                }
                None => self.shared.cvs[me].wait(&mut g),
            }
            self.check_poison();
        }
        self.shared.nwaiting.fetch_sub(1, Ordering::SeqCst);
        g.state[me] = RankState::OrderedRunning;
        g.ordered_busy = true;
        let t0 = self.shared.clock(me);
        drop(g);

        self.shared.ordered_ops.fetch_add(1, Ordering::Relaxed);
        let out = catch_unwind(AssertUnwindSafe(|| f(t0)));

        let mut g = self.shared.sched();
        g.ordered_busy = false;
        g.state[me] = RankState::Free;
        match out {
            Ok((t1, r)) => {
                assert!(t1 >= t0, "ordered section moved time backwards");
                self.shared.set_clock(me, t1);
                self.shared.refresh_key(&mut g, me);
                self.shared.wake_next(&mut g);
                drop(g);
                r
            }
            Err(payload) => {
                self.shared.poison(&mut g);
                drop(g);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Convenience: an ordered section that leaves the clock unchanged.
    pub fn ordered_read<R>(&self, f: impl FnOnce(SimTime) -> R) -> R {
        self.ordered(|t| (t, f(t)))
    }

    /// Park this rank until some other rank calls [`Ctx::unpark`] on it.
    /// Returns the rank's clock after waking (at least the wake time the
    /// waker supplied). A permit posted before `park` is consumed
    /// immediately, so wake-ups are never lost.
    pub fn park(&self) -> SimTime {
        let me = self.rank;
        let mut g = self.shared.sched();
        self.check_poison();
        self.shared.refresh_key(&mut g, me);
        if let Some(t) = g.permits[me].take() {
            if self.shared.clock(me) < t {
                self.shared.set_clock(me, t);
                self.shared.refresh_key(&mut g, me);
            }
            let now = self.shared.clock(me);
            // Our clock moving forward may hand the grant to a waiter.
            self.shared.wake_next(&mut g);
            return now;
        }
        g.state[me] = RankState::Parked;
        g.live_unparked -= 1;
        if g.index.set(me, ABSENT) {
            g.index_updates += 1;
        }
        if g.live_unparked == 0 {
            self.deadlock(&mut g);
        }
        // Our parking may unblock an ordered waiter.
        self.shared.wake_next(&mut g);
        loop {
            self.shared.cvs[me].wait(&mut g);
            self.check_poison();
            if g.state[me] == RankState::Free {
                break;
            }
            // A finishing rank woke us to report that nobody can make
            // progress any more.
            if g.live_unparked == 0 {
                self.deadlock(&mut g);
            }
        }
        let now = self.shared.clock(me);
        drop(g);
        now
    }

    /// Raise the typed [`Deadlock`] panic with the full state dump,
    /// poisoning the run so every other thread unwinds.
    fn deadlock(&self, g: &mut Sched) -> ! {
        let dump = self.shared.dump(g);
        self.shared.poison(g);
        std::panic::panic_any(Deadlock(format!(
            "simulated deadlock: all live ranks parked\n{dump}"
        )));
    }

    /// Wake `target` (or post a permit if it has not parked yet), with its
    /// clock raised to at least `at`. Call this from inside an ordered
    /// section so wakes obey the global event order.
    pub fn unpark(&self, target: Rank, at: SimTime) {
        let mut g = self.shared.sched();
        match g.state[target] {
            RankState::Parked => {
                if self.shared.clock(target) < at {
                    self.shared.set_clock(target, at);
                }
                g.state[target] = RankState::Free;
                g.live_unparked += 1;
                if g.index.set(target, (self.shared.clock(target), target)) {
                    g.index_updates += 1;
                }
                // Re-inserting a key can only lower the index minimum, so
                // no ordered waiter becomes grantable: waking the target
                // alone suffices.
                g.wakeups += 1;
                self.shared.cvs[target].notify_one();
            }
            RankState::Done => panic!("unpark of finished rank {target}"),
            _ => {
                let p = g.permits[target].get_or_insert(at);
                if *p < at {
                    *p = at;
                }
            }
        }
    }

    /// Transition to `Done` after the rank closure returned or panicked,
    /// handing the scheduler forward (or reporting poison / deadlock).
    fn finish(&self, panicked: bool) {
        let me = self.rank;
        let mut g = self.shared.sched();
        let prev = g.state[me];
        if prev.indexed() {
            g.live_unparked -= 1;
            if g.index.set(me, ABSENT) {
                g.index_updates += 1;
            }
        }
        if prev == RankState::WaitingOrdered {
            // Unwound out of an ordered wait (poison): keep the
            // fast-path waiter count honest.
            self.shared.nwaiting.fetch_sub(1, Ordering::SeqCst);
        }
        g.state[me] = RankState::Done;
        if panicked {
            self.shared.poison(&mut g);
        } else if g.live_unparked == 0 {
            // Everyone still alive is parked: wake the lowest parked rank
            // so it can report the deadlock with a full state dump.
            if let Some(p) = (0..g.state.len()).find(|&r| g.state[r] == RankState::Parked) {
                g.wakeups += 1;
                self.shared.cvs[p].notify_one();
            }
        } else {
            self.shared.wake_next(&mut g);
        }
    }
}

/// Host-side tuning knobs for the executor. The virtual-time results are
/// independent of these — they only affect wall-clock and memory.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Host stack size per rank thread, in bytes. Rank closures run the
    /// whole simulated I/O stack but keep bulk data on the heap
    /// ([`crate::Bytes`]), so small stacks suffice — the default keeps a
    /// 1024-rank world in the hundreds of megabytes of address space
    /// instead of gigabytes.
    pub stack_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            stack_size: 256 * 1024,
        }
    }
}

/// Scheduler contention counters for one run: how much host-side work
/// the executor did to maintain the virtual-time order. Wall-clock
/// diagnostics only — virtual times are independent of these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Condvar notifications issued (targeted grants, unparks, poison
    /// broadcasts).
    pub wakeups: u64,
    /// Direct grant handoffs: state changes that computed a unique next
    /// grantable rank and woke exactly it.
    pub handoffs: u64,
    /// Priority-index leaf updates (each O(log n)).
    pub index_updates: u64,
    /// Scheduler lock acquisitions.
    pub lock_acquisitions: u64,
}

/// Outcome of a simulation run.
#[derive(Debug)]
pub struct SimReport<T> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<T>,
    /// The largest final clock over all ranks — the simulated makespan.
    pub makespan: SimTime,
    /// Number of ordered sections executed (a proxy for event count).
    pub ordered_ops: u64,
    /// Host-side scheduler contention counters.
    pub sched: SchedStats,
}

type Panic = Box<dyn std::any::Any + Send>;

/// The engine's own peer-cascade unwind (raised by `check_poison`) is
/// never the interesting panic — it only exists to tear the world down
/// after some rank hit a real one.
fn is_peer_cascade(p: &Panic) -> bool {
    p.downcast_ref::<String>()
        .is_some_and(|m| m.contains("peer rank panicked"))
}

/// Keep the root-cause panic: the first payload wins unless it is a
/// peer-cascade unwind and a later rank died of a real panic.
fn prefer_root_cause(current: Option<Panic>, new: Panic) -> Option<Panic> {
    match current {
        None => Some(new),
        Some(cur) if is_peer_cascade(&cur) && !is_peer_cascade(&new) => Some(new),
        some => some,
    }
}

/// Run `nranks` copies of `f` (one per rank) to completion under the
/// virtual-time scheduler and collect their results.
///
/// Panics if any rank panics (including simulated deadlock), propagating
/// the root-cause panic payload (see [`prefer_root_cause`]'s policy: the
/// first non-cascade panic wins over the "peer rank panicked" unwinds it
/// triggers in other ranks).
pub fn run<T, F>(nranks: usize, f: F) -> SimReport<T>
where
    T: Send,
    F: Fn(&Ctx) -> T + Sync,
{
    run_with_config(nranks, EngineConfig::default(), None, f)
}

/// [`run`], with an optional [`ClockHook`] dilating local advances
/// (e.g. a fault plan's compute stragglers). `run(n, f)` is exactly
/// `run_with_hook(n, None, f)`.
pub fn run_with_hook<T, F>(nranks: usize, hook: Option<Arc<dyn ClockHook>>, f: F) -> SimReport<T>
where
    T: Send,
    F: Fn(&Ctx) -> T + Sync,
{
    run_with_config(nranks, EngineConfig::default(), hook, f)
}

/// The fully-general entry point: [`run_with_hook`] plus host-side
/// executor knobs ([`EngineConfig`]).
pub fn run_with_config<T, F>(
    nranks: usize,
    config: EngineConfig,
    hook: Option<Arc<dyn ClockHook>>,
    f: F,
) -> SimReport<T>
where
    T: Send,
    F: Fn(&Ctx) -> T + Sync,
{
    assert!(nranks > 0, "need at least one rank");
    let shared = Arc::new(Shared {
        sched: Mutex::new(Sched {
            state: vec![RankState::Free; nranks],
            permits: vec![None; nranks],
            ordered_busy: false,
            live_unparked: nranks,
            index: PriorityIndex::new(nranks),
            wakeups: 0,
            handoffs: 0,
            index_updates: 0,
        }),
        cvs: (0..nranks).map(|_| Condvar::new()).collect(),
        clocks: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
        poisoned: AtomicBool::new(false),
        nwaiting: AtomicUsize::new(0),
        lock_acquisitions: AtomicU64::new(0),
        ordered_ops: AtomicU64::new(0),
        hook,
    });

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    let mut first_panic: Option<Panic> = None;

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let ctx = Ctx {
                rank,
                nranks,
                shared: Arc::clone(&shared),
            };
            let f = &f;
            let h = std::thread::Builder::new()
                .name(format!("rank{rank}"))
                .stack_size(config.stack_size)
                .spawn_scoped(s, move || {
                    let out = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                    ctx.finish(out.is_err());
                    out
                })
                .expect("spawn rank thread");
            handles.push(h);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join().expect("rank thread itself must not die") {
                Ok(v) => results[rank] = Some(v),
                Err(p) => first_panic = prefer_root_cause(first_panic.take(), p),
            }
        }
    });

    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }

    let sched = {
        let g = shared.sched.lock();
        SchedStats {
            wakeups: g.wakeups,
            handoffs: g.handoffs,
            index_updates: g.index_updates,
            lock_acquisitions: shared.lock_acquisitions.load(Ordering::Relaxed),
        }
    };
    let makespan = (0..nranks)
        .map(|r| shared.clock(r))
        .max()
        .unwrap_or(SimTime::ZERO);
    SimReport {
        results: results.into_iter().map(|r| r.unwrap()).collect(),
        makespan,
        ordered_ops: shared.ordered_ops.load(Ordering::Relaxed),
        sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_index_tracks_min_exactly() {
        let mut idx = PriorityIndex::new(5);
        assert_eq!(idx.min(), Some((SimTime::ZERO, 0)));
        assert!(idx.set(0, (SimTime(50), 0)));
        assert!(idx.set(1, (SimTime(20), 1)));
        assert!(idx.set(2, (SimTime(20), 2)));
        assert!(idx.set(3, (SimTime(90), 3)));
        assert!(idx.set(4, (SimTime(70), 4)));
        // Ties break by rank.
        assert_eq!(idx.min(), Some((SimTime(20), 1)));
        assert!(idx.set(1, ABSENT));
        assert_eq!(idx.min(), Some((SimTime(20), 2)));
        assert!(idx.set(2, (SimTime(95), 2)));
        assert_eq!(idx.min(), Some((SimTime(50), 0)));
        for r in [0, 2, 3, 4] {
            assert!(idx.set(r, ABSENT));
        }
        assert_eq!(idx.min(), None);
        // Unchanged writes report no update.
        assert!(!idx.set(3, ABSENT));
    }

    #[test]
    fn priority_index_single_rank() {
        let mut idx = PriorityIndex::new(1);
        assert_eq!(idx.min(), Some((SimTime::ZERO, 0)));
        assert!(idx.set(0, (SimTime(7), 0)));
        assert_eq!(idx.min(), Some((SimTime(7), 0)));
        assert!(idx.set(0, ABSENT));
        assert_eq!(idx.min(), None);
    }

    #[test]
    fn root_cause_preference() {
        let root: Panic = Box::new("real failure".to_string());
        let cascade: Panic = Box::new("peer rank panicked; unwinding rank 2".to_string());
        // First payload wins...
        let kept = prefer_root_cause(None, root).unwrap();
        assert!(!is_peer_cascade(&kept));
        // ...unless it was a cascade and a root cause arrives later.
        let kept = prefer_root_cause(Some(cascade), kept).unwrap();
        assert_eq!(kept.downcast_ref::<String>().unwrap(), "real failure");
        // A root cause is never displaced by a later cascade.
        let cascade2: Panic = Box::new("peer rank panicked; unwinding rank 0".to_string());
        let kept = prefer_root_cause(Some(kept), cascade2).unwrap();
        assert_eq!(kept.downcast_ref::<String>().unwrap(), "real failure");
    }
}
