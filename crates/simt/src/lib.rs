//! `amrio-simt` — the discrete-event virtual-time kernel underneath the
//! whole amrio stack.
//!
//! Simulated processors run as OS threads; each carries a virtual clock.
//! Interactions with shared simulated hardware (networks, disks) are
//! serialized in `(clock, rank)` order through [`Ctx::ordered`], giving
//! deterministic, reproducible contention no matter how the host schedules
//! the threads. See [`engine`] for the scheduling rules.
//!
//! ```
//! use amrio_simt::{run, SimDur};
//!
//! let report = run(4, |ctx| {
//!     ctx.advance(SimDur::from_micros(10 * (ctx.rank() as u64 + 1)));
//!     ctx.now()
//! });
//! assert_eq!(report.makespan.0, 40_000);
//! ```

#![forbid(unsafe_code)]

pub mod bytes;
pub mod digest;
pub mod engine;
pub mod sync;
pub mod time;

pub use bytes::{copied_bytes, count_copy, reset_copied_bytes, Bytes};
pub use engine::{
    run, run_with_config, run_with_hook, ClockHook, Ctx, Deadlock, EngineConfig, Rank, SchedStats,
    SimReport,
};
pub use time::{SimDur, SimTime};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn single_rank_advances() {
        let r = run(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.nranks(), 1);
            ctx.advance(SimDur::from_micros(5));
            ctx.now()
        });
        assert_eq!(r.makespan, SimTime(5_000));
        assert_eq!(r.results[0], SimTime(5_000));
    }

    #[test]
    fn ordered_sections_observe_priority_order() {
        // Each rank advances to a distinct time then records itself in a
        // shared log from an ordered section; the log must come out sorted
        // by (time, rank) on every run.
        let log = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..20 {
            log.lock().unwrap().clear();
            let log2 = Arc::clone(&log);
            run(8, move |ctx| {
                // Reverse order: rank 7 has the earliest clock.
                let d = SimDur::from_micros((8 - ctx.rank() as u64) * 10);
                ctx.advance(d);
                let log3 = Arc::clone(&log2);
                ctx.ordered_read(|t| log3.lock().unwrap().push((t, ctx.rank())));
            });
            let got = log.lock().unwrap().clone();
            let mut want = got.clone();
            want.sort();
            assert_eq!(got, want, "ordered sections ran out of priority order");
        }
    }

    #[test]
    fn equal_clock_ties_break_by_rank() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        run(6, move |ctx| {
            ctx.advance(SimDur::from_micros(7));
            let l = Arc::clone(&log2);
            ctx.ordered_read(|_| l.lock().unwrap().push(ctx.rank()));
        });
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn park_unpark_transfers_time() {
        let r = run(2, |ctx| {
            if ctx.rank() == 0 {
                // Wait for rank 1's signal.
                let woke = ctx.park();
                assert_eq!(woke, SimTime(2_000_000));
                ctx.now()
            } else {
                ctx.advance(SimDur::from_millis(2));
                ctx.ordered_read(|t| ctx.unpark(0, t));
                ctx.now()
            }
        });
        assert_eq!(r.results[0], SimTime(2_000_000));
    }

    #[test]
    fn unpark_before_park_leaves_permit() {
        let r = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.advance(SimDur::from_micros(1));
                ctx.ordered_read(|t| ctx.unpark(1, t + SimDur::from_micros(9)));
                0
            } else {
                // Burn some real time so the permit is very likely posted
                // first; semantics must not depend on it either way.
                std::thread::sleep(std::time::Duration::from_millis(5));
                let t = ctx.park();
                assert_eq!(t, SimTime(10_000));
                1
            }
        });
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn advance_to_is_monotonic() {
        run(1, |ctx| {
            ctx.advance_to(SimTime(500));
            ctx.advance_to(SimTime(100)); // no-op
            assert_eq!(ctx.now(), SimTime(500));
        });
    }

    #[test]
    fn deadlock_is_detected() {
        let res = std::panic::catch_unwind(|| {
            run(2, |ctx| {
                ctx.park();
            })
        });
        let err = match res {
            Err(e) => e,
            Ok(_) => panic!("deadlock must panic"),
        };
        let d = err
            .downcast_ref::<Deadlock>()
            .expect("deadlock panics carry the typed Deadlock payload");
        assert!(d.0.contains("deadlock"), "unexpected panic: {}", d.0);
    }

    #[test]
    fn rank_panic_poisons_peers() {
        let res = std::panic::catch_unwind(|| {
            run(3, |ctx| {
                if ctx.rank() == 1 {
                    panic!("boom from rank 1");
                }
                // Peers would otherwise wait forever.
                ctx.park();
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn ordered_result_and_clock_update() {
        let r = run(1, |ctx| {
            let v = ctx.ordered(|t| (t + SimDur::from_micros(42), "done"));
            assert_eq!(v, "done");
            ctx.now()
        });
        assert_eq!(r.results[0], SimTime(42_000));
    }

    #[test]
    fn free_rank_blocks_ordered_waiter_until_it_advances() {
        // Rank 1 sits at clock 0 doing "local work"; rank 0 wants an ordered
        // section at clock 10us and must wait until rank 1 passes it.
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        run(2, move |ctx| {
            if ctx.rank() == 0 {
                ctx.advance(SimDur::from_micros(10));
                let f = Arc::clone(&f2);
                ctx.ordered_read(|_| {
                    assert_eq!(f.load(Ordering::SeqCst), 1, "rank 1 had earlier priority");
                });
            } else {
                std::thread::sleep(std::time::Duration::from_millis(10));
                let f = Arc::clone(&f2);
                ctx.ordered_read(|_| {
                    f.store(1, Ordering::SeqCst);
                });
                ctx.advance(SimDur::from_micros(100));
            }
        });
    }

    #[test]
    fn clock_hook_dilates_advance_but_not_advance_to() {
        struct DoubleRank0;
        impl ClockHook for DoubleRank0 {
            fn dilate(&self, rank: Rank, _now: SimTime, d: SimDur) -> SimDur {
                if rank == 0 {
                    SimDur(d.0 * 2)
                } else {
                    d
                }
            }
        }
        let r = run_with_hook(2, Some(Arc::new(DoubleRank0)), |ctx| {
            ctx.advance(SimDur::from_micros(10));
            if ctx.rank() == 1 {
                // advance_to must NOT be dilated.
                ctx.advance_to(SimTime(15_000));
            }
            ctx.now()
        });
        assert_eq!(r.results[0], SimTime(20_000));
        assert_eq!(r.results[1], SimTime(15_000));
    }

    #[test]
    fn report_counts_ordered_ops() {
        let r = run(3, |ctx| {
            for _ in 0..5 {
                ctx.ordered(|t| (t + SimDur::from_nanos(1), ()));
            }
        });
        assert_eq!(r.ordered_ops, 15);
    }

    #[test]
    fn determinism_of_makespan_under_contention() {
        let one = || {
            run(16, |ctx| {
                for i in 0..10u64 {
                    ctx.advance(SimDur::from_nanos(ctx.rank() as u64 * 13 + i));
                    ctx.ordered(|t| (t + SimDur::from_nanos(7), ()));
                }
                ctx.now()
            })
        };
        let a = one();
        let b = one();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.results, b.results);
    }
}

#[cfg(test)]
mod stress {
    use super::*;

    #[test]
    fn two_hundred_fifty_six_ranks_interleave_deterministically() {
        // Pure-engine rank sweep: a 256-rank world with contended
        // ordered sections must produce identical per-rank clocks,
        // makespan, and ordered-op counts on repeated runs.
        let go = || {
            run(256, |ctx| {
                for i in 0..8u64 {
                    ctx.advance(SimDur::from_nanos((ctx.rank() as u64 * 131 + i * 11) % 251));
                    ctx.ordered(|t| (t + SimDur::from_nanos(2), ()));
                }
                ctx.now()
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.ordered_ops, 256 * 8);
        assert_eq!(b.ordered_ops, 256 * 8);
    }

    #[test]
    fn sixty_four_ranks_interleave_deterministically() {
        let go = || {
            run(64, |ctx| {
                for i in 0..20u64 {
                    ctx.advance(SimDur::from_nanos((ctx.rank() as u64 * 31 + i * 7) % 97));
                    ctx.ordered(|t| (t + SimDur::from_nanos(3), ()));
                }
                ctx.now()
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.ordered_ops, 64 * 20);
    }

    #[test]
    fn high_rank_count_deadlock_keeps_typed_payload_and_dump() {
        // All 512 ranks park with nobody left to wake them: the engine
        // must raise the typed Deadlock panic and the state dump must
        // still cover every rank even at high rank counts.
        let res = std::panic::catch_unwind(|| {
            run_with_config(
                512,
                EngineConfig {
                    stack_size: 128 * 1024,
                },
                None,
                |ctx| {
                    ctx.advance(SimDur::from_nanos(ctx.rank() as u64));
                    ctx.park();
                },
            )
        });
        let err = res.expect_err("deadlock must panic");
        let d = err
            .downcast_ref::<Deadlock>()
            .expect("deadlock panics carry the typed Deadlock payload");
        assert!(d.0.contains("simulated deadlock"), "message: {}", d.0);
        for rank in [0, 1, 255, 511] {
            assert!(
                d.0.contains(&format!("rank {rank}:")),
                "state dump lost rank {rank}:\n{}",
                d.0
            );
        }
    }

    #[test]
    fn deadlock_after_last_live_rank_finishes() {
        // Ranks 1..n park forever; rank 0 just returns. The moment the
        // last unparked rank finishes, the parked survivors are dead —
        // the engine must wake one of them to report the deadlock.
        let res = std::panic::catch_unwind(|| {
            run(4, |ctx| {
                if ctx.rank() > 0 {
                    ctx.park();
                }
            })
        });
        let err = res.expect_err("deadlock must panic");
        assert!(err.downcast_ref::<Deadlock>().is_some());
    }

    #[test]
    fn root_cause_panic_wins_over_peer_cascade() {
        // Rank 2 hits the real bug while ranks 0/1 sit parked; the
        // poison protocol unwinds them with "peer rank panicked"
        // cascades, but the propagated payload must be the root cause.
        let res = std::panic::catch_unwind(|| {
            run(3, |ctx| {
                if ctx.rank() == 2 {
                    ctx.advance(SimDur::from_micros(1));
                    panic!("root cause from rank 2");
                }
                ctx.park();
            })
        });
        let err = res.expect_err("must propagate the panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("root cause from rank 2"),
            "propagated a secondary panic instead of the root cause: {msg}"
        );
    }

    #[test]
    fn contention_counters_are_reported() {
        let r = run(8, |ctx| {
            for i in 0..10u64 {
                ctx.advance(SimDur::from_nanos(ctx.rank() as u64 * 17 + i));
                ctx.ordered(|t| (t + SimDur::from_nanos(5), ()));
            }
        });
        assert_eq!(r.ordered_ops, 80);
        // Contended grants flow through targeted handoffs, and every
        // handoff is a wakeup; the index is maintained incrementally.
        assert!(r.sched.handoffs > 0, "no grant handoffs recorded");
        assert!(r.sched.wakeups >= r.sched.handoffs);
        assert!(r.sched.index_updates > 0);
        assert!(r.sched.lock_acquisitions > 0);
    }

    #[test]
    fn chained_park_unpark_pipeline() {
        // Rank i wakes rank i+1 after advancing; times accumulate.
        let n = 10;
        let r = run(n, |ctx| {
            if ctx.rank() > 0 {
                ctx.park();
            }
            ctx.advance(SimDur::from_micros(5));
            if ctx.rank() + 1 < ctx.nranks() {
                ctx.ordered_read(|t| ctx.unpark(ctx.rank() + 1, t));
            }
            ctx.now()
        });
        for w in r.results.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 5_000);
        }
        assert_eq!(r.makespan, SimTime(5_000 * n as u64));
    }
}
