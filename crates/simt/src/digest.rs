//! The one FNV-1a implementation in the workspace.
//!
//! Checkpoint manifests ([`amrio-recover`]), file-system image digests
//! and per-file content digests ([`amrio-disk`]), and the global
//! simulation digest ([`amrio-enzo`]) all hash with 64-bit FNV-1a.
//! They used to each carry a hand-rolled copy; the golden digests baked
//! into tests and manifests depend on every copy agreeing, so the
//! algorithm lives here once and call sites fold bytes through
//! [`fnv1a`].

/// FNV-1a 64-bit offset basis — the seed for a fresh digest.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// Fold `bytes` into a running FNV-1a digest `h`.
///
/// Start from [`FNV_OFFSET`] and chain calls to digest a record
/// incrementally; the result is identical to hashing the concatenated
/// bytes in one call.
#[inline]
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One-shot digest of `bytes` from the standard offset basis.
#[inline]
pub fn fnv1a_once(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a 64-bit test vectors (Noll's reference set).
    #[test]
    fn reference_vectors() {
        assert_eq!(fnv1a_once(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_once(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_once(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let whole = fnv1a_once(b"amrio checkpoint manifest");
        let mut h = FNV_OFFSET;
        h = fnv1a(h, b"amrio ");
        h = fnv1a(h, b"checkpoint");
        h = fnv1a(h, b" manifest");
        assert_eq!(h, whole);
        // Empty chunks are identity.
        assert_eq!(fnv1a(h, b""), h);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fnv1a_once(b"ab"), fnv1a_once(b"ba"));
        assert_ne!(fnv1a(fnv1a_once(b"a"), b"b"), fnv1a(fnv1a_once(b"b"), b"a"));
    }
}
