//! Shared, slice-able immutable byte buffers and the host-copy ledger.
//!
//! The simulator's data path used to clone every payload at each hop
//! (pack → send → mailbox → aggregator domain buffer → per-piece file
//! write), so a checkpoint byte was memcpy'd 4–6 times on the host.
//! [`Bytes`] is the fix: an `Arc`-backed window into an immutable
//! buffer. Cloning or slicing one is a refcount bump; only explicit
//! [`Bytes::copy_from_slice`] (and the other sites that call
//! [`count_copy`]) actually move bytes, and every such move is recorded
//! in a process-wide ledger so `amrio-bench --bin selfbench` can report
//! bytes-memcpy'd per checkpoint.
//!
//! The ledger is process-global and `Relaxed`: it is a measurement aid,
//! not a synchronization primitive. Reset it around a region of
//! interest with [`reset_copied_bytes`] and read it with
//! [`copied_bytes`].

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static COPIED: AtomicU64 = AtomicU64::new(0);

/// Record `n` bytes memcpy'd on the host data path.
#[inline]
pub fn count_copy(n: usize) {
    COPIED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Total bytes memcpy'd since the last [`reset_copied_bytes`].
pub fn copied_bytes() -> u64 {
    COPIED.load(Ordering::Relaxed)
}

/// Zero the host-copy ledger.
pub fn reset_copied_bytes() {
    COPIED.store(0, Ordering::Relaxed);
}

/// An immutable, cheaply clone-able window into a shared byte buffer.
///
/// Backed by `Arc<Vec<u8>>` plus an `(offset, len)` window, so
/// [`Bytes::slice`] and `Clone` never touch the payload. `Deref` to
/// `[u8]` makes every read-only `&[u8]` API accept a `&Bytes` via
/// coercion.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation of payload).
    pub fn new() -> Bytes {
        Bytes {
            buf: Arc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }

    /// Wrap an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            buf: Arc::new(v),
            off: 0,
            len,
        }
    }

    /// Copy a borrowed slice into a fresh buffer. This is the *counted*
    /// constructor — use it only when the source cannot be handed over.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        count_copy(s.len());
        Bytes::from_vec(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-window. Panics if the range is out of bounds.
    pub fn slice(&self, r: Range<usize>) -> Bytes {
        assert!(r.start <= r.end && r.end <= self.len, "slice out of range");
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + r.start,
            len: r.end - r.start,
        }
    }

    /// Recover an owned `Vec<u8>`. Zero-copy when this handle is the
    /// only owner and spans the whole buffer; otherwise a counted copy.
    pub fn into_vec(self) -> Vec<u8> {
        if self.off == 0 && self.len == self.buf.len() {
            match Arc::try_unwrap(self.buf) {
                Ok(v) => return v,
                Err(buf) => {
                    count_copy(self.len);
                    return buf[self.off..self.off + self.len].to_vec();
                }
            }
        }
        count_copy(self.len);
        self.buf[self.off..self.off + self.len].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_window_is_correct() {
        let b = Bytes::from_vec((0u8..32).collect());
        let s = b.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(&s[..], &(4u8..12).collect::<Vec<_>>()[..]);
        let s2 = s.slice(2..4);
        assert_eq!(&s2[..], &[6, 7]);
        assert_eq!(b.len(), 32);
    }

    #[test]
    fn from_vec_and_unique_into_vec_do_not_count() {
        let before = copied_bytes();
        let b = Bytes::from_vec(vec![1, 2, 3]);
        let v = b.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(copied_bytes(), before);
    }

    #[test]
    fn copy_constructors_count() {
        let before = copied_bytes();
        let b = Bytes::copy_from_slice(&[0u8; 100]);
        assert_eq!(copied_bytes() - before, 100);
        // A shared handle forces into_vec to copy.
        let b2 = b.clone();
        let _v = b.into_vec();
        assert_eq!(copied_bytes() - before, 200);
        drop(b2);
    }

    #[test]
    fn equality_against_common_shapes() {
        let b = Bytes::from_vec(b"payload".to_vec());
        assert_eq!(b, b"payload");
        assert_eq!(b, b"payload"[..]);
        assert_eq!(b, b"payload".to_vec());
        assert_eq!(b.slice(0..3), b"pay");
        assert_ne!(b, b"other..");
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from_vec(vec![0; 4]).slice(2..6);
    }
}
