//! Thin std-backed locks with the ergonomics the rest of the stack wants:
//! `lock()` returns the guard directly, and poison from a panicked peer is
//! ignored — the engine has its own poisoning protocol (see
//! [`engine`](crate::engine)) that reports the *root-cause* panic instead
//! of a cascade of `PoisonError`s, so the locks themselves must keep
//! working while the simulation tears down.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive; like `std::sync::Mutex` but `lock()` never
/// returns a `Result`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

/// Condition variable paired with [`Mutex`]; `wait` re-locks through the
/// same poison-ignoring path as `lock`.
pub struct Condvar(std::sync::Condvar);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
        *m.lock() += 1;
        let m = Arc::into_inner(m).expect("sole owner");
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn condvar_wait_roundtrips_the_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }
}
