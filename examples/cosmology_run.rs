//! A longer cosmology-style run: watch structure form (particles fall
//! into the proto-clusters), the AMR hierarchy adapt, and periodic data
//! dumps go out — the workload of paper Fig. 2.
//!
//! ```sh
//! cargo run --release --example cosmology_run
//! ```

use amrio::enzo::evolve::{evolve_step, rebuild_refinement};
use amrio::enzo::{IoStrategy, MpiIoOptimized, Platform, ProblemSize, SimConfig, SimState};
use amrio_mpi::World;
use amrio_mpiio::MpiIo;
use amrio_simt::SimTime;

fn main() {
    let nranks = 8;
    let platform = Platform::origin2000(nranks);
    let mut cfg = SimConfig::new(ProblemSize::Custom(32), nranks);
    cfg.cycles_per_dump = 3;

    let world = World::new(nranks, platform.net.clone());
    let io = MpiIo::new(platform.fs.clone());
    let strategy = MpiIoOptimized;

    let report = world.run(|c| {
        let mut st = SimState::init(c, cfg.clone());
        rebuild_refinement(c, &mut st);
        let mut rows = Vec::new();
        let mut dump_id = 0u32;
        for cycle in 1..=9u64 {
            evolve_step(c, &mut st, 1.0);
            if cycle % cfg.cycles_per_dump as u64 == 0 {
                rebuild_refinement(c, &mut st);
                let t0 = c.now();
                strategy.write_checkpoint(c, &io, &st, dump_id);
                c.barrier();
                let dt = c.now() - t0;
                if c.rank() == 0 {
                    let l1: u64 = st.hierarchy.at_level(1).map(|g| g.bbox.cells()).sum();
                    let l2: u64 = st.hierarchy.at_level(2).map(|g| g.bbox.cells()).sum();
                    rows.push((
                        cycle,
                        dump_id,
                        st.hierarchy.grids.len(),
                        l1,
                        l2,
                        dt.as_secs_f64(),
                    ));
                }
                dump_id += 1;
            }
        }
        (rows, c.now())
    });

    println!(
        "{:>6} {:>6} {:>7} {:>10} {:>10} {:>10}",
        "cycle", "dump", "grids", "L1 cells", "L2 cells", "dump[s]"
    );
    for (cycle, dump, grids, l1, l2, dt) in &report.results[0].0 {
        println!(
            "{:>6} {:>6} {:>7} {:>10} {:>10} {:>10.3}",
            cycle, dump, grids, l1, l2, dt
        );
    }
    let end: SimTime = report.results.iter().map(|(_, t)| *t).max().unwrap();
    println!(
        "\nsimulated wall time of the whole run: {:.2}s",
        end.as_secs_f64()
    );
    println!(
        "(the refined region tracks the clustering matter — compare L1/L2 cells across dumps)"
    );
}
