//! The `amrio-check` correctness checker in action: a clean
//! checkpoint→restart pipeline under strict checking, then two seeded
//! bugs caught in logging mode.
//!
//! ```sh
//! cargo run --release --example checked_run
//! ```

use amrio::check::{CheckMode, Checker};
use amrio::enzo::{Experiment, MpiIoOptimized, Platform, ProblemSize, SimConfig};
use amrio::mpi::World;
use amrio::mpiio::{Mode, MpiIo};
use amrio::net::NetConfig;
use std::sync::Arc;

fn main() {
    // 1. The real pipeline, strict mode: any collective mismatch or
    //    file-consistency violation would panic with a full report.
    let nranks = 4;
    let mut cfg = SimConfig::new(ProblemSize::Custom(16), nranks);
    cfg.particle_fraction = 0.5;
    cfg.refine_threshold = 3.0;
    let platform = Platform::origin2000(nranks);
    let out = Experiment::new(&platform, &cfg, &MpiIoOptimized)
        .cycles(1)
        .check(CheckMode::Strict)
        .run();
    let (rep, check) = (out.report, out.check.expect("checker was attached"));
    println!(
        "clean pipeline: strategy={} verified={} write={:.3}s read={:.3}s -> {}",
        rep.strategy,
        rep.verified,
        rep.write_time,
        rep.read_time,
        if check.is_clean() {
            "0 violations"
        } else {
            "VIOLATIONS?!"
        }
    );

    // 2. A seeded collective bug, logging mode: every rank nominates
    //    itself as bcast root. The run survives — only the checker sees.
    let ck = Arc::new(Checker::new(CheckMode::Log, 2));
    let w = World::new(2, NetConfig::ccnuma(2)).with_checker(Arc::clone(&ck));
    w.run(|c| {
        c.bcast(c.rank(), vec![0xAB; 64]);
    });
    println!("\nseeded self-root bcast:\n{}", ck.finalize());

    // 3. A seeded file race, logging mode: two ranks write overlapping
    //    byte ranges with no barrier between them.
    let ck = Arc::new(Checker::new(CheckMode::Log, 2));
    let w = World::new(2, NetConfig::ccnuma(2)).with_checker(Arc::clone(&ck));
    let io = MpiIo::new(platform.fs.clone());
    io.attach_checker(&ck);
    w.run(|c| {
        let f = io.open(c, "race", Mode::Create);
        f.write_at(c.rank() as u64 * 64, &[c.rank() as u8; 128]);
    });
    println!("seeded overlapping writes:\n{}", ck.finalize());
}
