//! Quickstart: run a small AMR cosmology simulation on a simulated SGI
//! Origin2000 and checkpoint it with the optimized MPI-IO strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use amrio::enzo::{Experiment, MpiIoOptimized, Platform, ProblemSize, SimConfig};

fn main() {
    // 8 simulated processors on the ccNUMA machine with the XFS volume.
    let nranks = 8;
    let platform = Platform::origin2000(nranks);

    // A small custom problem so the example runs in a couple of seconds:
    // a 32^3 root grid with one particle per cell.
    let mut cfg = SimConfig::new(ProblemSize::Custom(32), nranks);
    cfg.max_level = 2;

    // Evolve two cycles, dump a checkpoint, restart it, verify.
    let report = Experiment::new(&platform, &cfg, &MpiIoOptimized)
        .cycles(2)
        .run()
        .report;

    println!("platform      : {}", report.platform);
    println!("problem       : {}", report.problem);
    println!("processors    : {}", report.nranks);
    println!(
        "grids at dump : {} (deepest level {})",
        report.grids, report.max_level
    );
    println!(
        "checkpoint    : wrote {:.1} MB in {:.3} simulated seconds",
        report.bytes_written as f64 / 1e6,
        report.write_time
    );
    println!(
        "restart       : read  {:.1} MB in {:.3} simulated seconds",
        report.bytes_read as f64 / 1e6,
        report.read_time
    );
    println!(
        "verification  : restart state {} the dumped state",
        if report.verified {
            "MATCHES"
        } else {
            "DOES NOT MATCH"
        }
    );
    assert!(report.verified);
}
