//! Visualization extraction: the paper notes checkpoint dumps are "used
//! either for restarting a resumed simulation or for visualization".
//! A viz client does not want the whole checkpoint — it reads one field
//! of the top grid (here: a density slice) out of the shared file.
//!
//! ```sh
//! cargo run --release --example viz_extract
//! ```

use amrio::enzo::evolve::rebuild_refinement;
use amrio::enzo::io::mpiio::Layout;
use amrio::enzo::{
    IoStrategy, MpiIoOptimized, Platform, ProblemSize, SimConfig, SimState, TOP_GRID,
};
use amrio_mpi::World;
use amrio_mpiio::{Datatype, Mode, MpiIo};

fn main() {
    let nranks = 8;
    let n: u64 = 32;
    let platform = Platform::origin2000(nranks);
    let cfg = SimConfig::new(ProblemSize::Custom(n), nranks);

    let world = World::new(nranks, platform.net.clone());
    let io = MpiIo::new(platform.fs.clone());
    let strategy = MpiIoOptimized;

    let slice = world.run(|c| {
        // Produce a dump.
        let mut st = SimState::init(c, cfg.clone());
        rebuild_refinement(c, &mut st);
        strategy.write_checkpoint(c, &io, &st, 0);
        c.barrier();

        // "Viz tool": rank 0 alone reads one z-plane of the density field
        // straight out of the shared checkpoint, using the same layout
        // metadata a restart would use.
        if c.rank() == 0 {
            let layout = Layout::new(&st.hierarchy);
            let f = io.open_single(c, "DD0000.cpio", Mode::Open);
            let z = n / 2;
            let t = Datatype::subarray3([n, n, n], [z, 0, 0], [1, n, n], 4);
            let t0 = c.now();
            // One z-plane is a single contiguous run: cheap partial read.
            let (off, len) = t.flatten()[0];
            let bytes = f.read_at(layout.field_off(TOP_GRID, 0) + off, len);
            let dt = (c.now() - t0).as_secs_f64();
            let vals: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
                .collect();
            println!(
                "read a {n}x{n} density slice ({} KB) in {:.4} simulated seconds",
                len / 1024,
                dt
            );
            Some(vals)
        } else {
            None
        }
    });

    // Render the slice as coarse ASCII art (the poor astronomer's viz).
    let vals = slice.results[0].as_ref().unwrap();
    let max = vals.iter().cloned().fold(f32::MIN, f32::max).max(1e-9);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    println!("density slice at z = {} (darker = denser):", n / 2);
    for y in 0..n as usize {
        let row: String = (0..n as usize)
            .map(|x| {
                let v = vals[y * n as usize + x] / max;
                shades[((v * (shades.len() - 1) as f32).round() as usize).min(shades.len() - 1)]
            })
            .collect();
        println!("  {row}");
    }
    println!("(the dense blobs are the proto-clusters the particles fall into)");
}
