//! Run the same simulation + checkpoint on all four platform models of
//! the paper and see how the user-level I/O pattern interacts with each
//! file system (the paper's central observation).
//!
//! ```sh
//! cargo run --release --example platform_sweep
//! ```

use amrio::enzo::{Experiment, Hdf4Serial, MpiIoOptimized, Platform, ProblemSize, SimConfig};

fn main() {
    let nranks = 8;
    let platforms = [
        Platform::origin2000(nranks),
        Platform::ibm_sp2(nranks),
        Platform::chiba_pvfs(nranks),
        Platform::chiba_local(nranks),
    ];
    let cfg = SimConfig::new(ProblemSize::Custom(48), nranks);

    println!(
        "{:<26} {:>14} {:>10} {:>10}",
        "platform", "strategy", "write[s]", "read[s]"
    );
    for platform in &platforms {
        for strategy in [&Hdf4Serial as &dyn amrio::enzo::IoStrategy, &MpiIoOptimized] {
            let r = Experiment::new(platform, &cfg, strategy)
                .cycles(2)
                .run()
                .report;
            assert!(r.verified);
            println!(
                "{:<26} {:>14} {:>10.3} {:>10.3}",
                r.platform, r.strategy, r.write_time, r.read_time
            );
        }
    }
    println!("\nNote how the same MPI-IO optimization helps on the Origin2000");
    println!("and the local disks, but not against GPFS's large fixed stripes");
    println!("or across Chiba City's Fast Ethernet (paper sections 4.1-4.4).");
}
