//! `amrio-tune` in action: lint the static access plan of one
//! experiment cell, search the MPI-IO hint space with the replay-based
//! cost model, then execute both the untuned baseline and the advisory
//! the search shipped — predicted next to actual virtual time, with the
//! byte-identity (image digest) check that proves tuning never changed
//! what was written.
//!
//! ```sh
//! cargo run --release --example tune_report
//! ```

use amrio::enzo::{Experiment, MpiIoOptimized, Platform, ProblemSize, SimConfig};
use amrio::plan::{plan, Backend, PlanInput};
use amrio::tune::{lint, predict_traced, search, TuneConfig};

fn main() {
    let nranks = 4;
    let platform = Platform::origin2000(nranks);
    let cfg = SimConfig::new(ProblemSize::Custom(16), nranks);
    println!(
        "== amrio-tune report: {} · {} x {nranks} ==\n",
        platform.name,
        cfg.problem.label()
    );

    // Static side: probe one run for the dump-time hierarchy, derive
    // the plan, lint it, and search the hint space.
    let probe = Experiment::new(&platform, &cfg, &MpiIoOptimized)
        .cycles(2)
        .probe()
        .run()
        .probe
        .expect("probe requested");
    let input = PlanInput::from_probe(&probe, &platform.fs);
    let p = plan(&input, Backend::MpiIo);

    let diags = lint(&input, &p);
    println!("-- lint: {} diagnostics --", diags.len());
    for d in &diags {
        println!("  {d}");
    }

    let outcome = search(&p, &platform.fs, &platform.net);
    let best = outcome.best();
    println!(
        "\n-- search: {} candidates, best = {} --",
        outcome.candidates.len(),
        best.cfg.label
    );
    for c in outcome.candidates.iter().take(5) {
        println!(
            "  {:<40} predicted {:.4}s ({} knobs)",
            c.cfg.label,
            c.cost.total_s(),
            c.cfg.knobs()
        );
    }

    // Dynamic side: execute the untuned baseline and the shipped
    // advisory; the replay's request stream sizes the comparison.
    let (_, events) = predict_traced(&p, &platform.fs, &platform.net, &best.cfg);
    println!(
        "\n-- replay issued {} file-system requests statically --",
        events.len()
    );

    let baseline = Experiment::new(&platform, &cfg, &MpiIoOptimized)
        .cycles(2)
        .run()
        .report;
    let tuned = Experiment::new(&platform, &cfg, &MpiIoOptimized)
        .cycles(2)
        .advisory(best.cfg.advisory())
        .run()
        .report;

    let pred_base = outcome
        .candidates
        .iter()
        .find(|c| c.cfg == TuneConfig::defaults())
        .expect("defaults are in the candidate space");
    println!("\n-- before / after --");
    println!(
        "  {:<22} {:>11} {:>11} {:>11} {:>11}",
        "config", "predicted_s", "write_s", "read_s", "total_s"
    );
    for (name, pred, r) in [
        ("baseline (MPI-IO)", pred_base.cost.total_s(), &baseline),
        (best.cfg.label.as_str(), best.cost.total_s(), &tuned),
    ] {
        println!(
            "  {:<22} {:>11.4} {:>11.4} {:>11.4} {:>11.4}",
            name,
            pred,
            r.write_time,
            r.read_time,
            r.write_time + r.read_time
        );
    }

    let beats = tuned.write_time + tuned.read_time <= baseline.write_time + baseline.read_time;
    let identical = tuned.image_digest == baseline.image_digest;
    println!(
        "\n  tuned {} the baseline; checkpoint image {}",
        if beats { "beats" } else { "LOSES TO" },
        if identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    if !(beats && identical) {
        std::process::exit(1);
    }
}
