//! `amrio-plan` in action: for each I/O backend, extract the static
//! access plan from an experiment configuration, prove exact-once
//! coverage and collective lockstep, diff the plan against a strict-mode
//! checked run (plan↔trace conformance), and print the layout-quality
//! metrics.
//!
//! Exits non-zero if any proof or conformance check fails — the CI gate
//! (`scripts/ci.sh`) runs this as the planner's self-verification.
//!
//! ```sh
//! cargo run --release --example plan_report
//! ```

use amrio::check::CheckMode;
use amrio::enzo::{
    Experiment, Hdf4Serial, Hdf5Parallel, IoStrategy, MpiIoOptimized, Platform, ProblemSize,
    SimConfig,
};
use amrio::hdf5::OverheadModel;
use amrio::plan::{
    check_conformance, layout_metrics, plan, verify_exact_once, verify_lockstep, Backend, PlanInput,
};

fn cfg(problem: ProblemSize, nranks: usize) -> SimConfig {
    let mut c = SimConfig::new(problem, nranks);
    c.particle_fraction = 0.5;
    c.refine_threshold = 3.0;
    c
}

fn backends() -> [(&'static str, Backend); 3] {
    [
        ("Hdf4Serial", Backend::Hdf4),
        ("MpiIoOptimized", Backend::MpiIo),
        ("Hdf5Parallel", Backend::Hdf5(OverheadModel::default())),
    ]
}

fn strategy_for(name: &str) -> Box<dyn IoStrategy> {
    match name {
        "Hdf4Serial" => Box::new(Hdf4Serial),
        "MpiIoOptimized" => Box::new(MpiIoOptimized),
        _ => Box::new(Hdf5Parallel::default()),
    }
}

/// One config cell: probe a strict checked run per backend, then prove
/// the static plan and diff it against the observed trace.
fn report(problem: ProblemSize, nranks: usize) -> bool {
    let platform = Platform::origin2000(nranks);
    let cfg = cfg(problem, nranks);
    println!("\n-- {} x {nranks} ranks --", problem.label());
    let mut ok = true;
    for (name, backend) in backends() {
        let strategy = strategy_for(name);
        let out = Experiment::new(&platform, &cfg, strategy.as_ref())
            .cycles(1)
            .check(CheckMode::Strict)
            .probe()
            .run();
        let (check, probe) = (
            out.check.expect("checker was attached"),
            out.probe.expect("probe was requested"),
        );
        if !check.is_clean() {
            println!("  {name}: CHECKER VIOLATIONS\n{check}");
            ok = false;
            continue;
        }
        let input = PlanInput::from_probe(&probe, &platform.fs);
        let p = plan(&input, backend);
        let cov = verify_exact_once(&p);
        let lock = verify_lockstep(&p);
        let conf = check_conformance(&p, &probe);
        let proven = cov.is_proven() && lock.is_empty() && conf.is_empty();
        println!(
            "  {:<14} exact-once={} ({} datasets, {} B covered)  lockstep={}  conformance={}",
            p.backend,
            if cov.is_proven() { "proven" } else { "FAILED" },
            cov.datasets,
            cov.covered_bytes,
            if lock.is_empty() { "ok" } else { "BROKEN" },
            if conf.is_empty() {
                "0 divergences".to_string()
            } else {
                format!("{} DIVERGENCES", conf.len())
            },
        );
        println!("  {:<14} {}", "", layout_metrics(&input, &p));
        for issue in cov.issues.iter().chain(lock.iter()) {
            println!("    !! {issue}");
        }
        for issue in &conf {
            println!("    !! {issue}");
        }
        ok &= proven;
    }
    ok
}

fn main() {
    let mut ok = true;
    ok &= report(ProblemSize::Custom(16), 4);
    ok &= report(ProblemSize::Custom(32), 8);
    ok &= report(ProblemSize::Custom(16), 1);
    if ok {
        println!("\nplan_report: all plans proven, all traces conform");
    } else {
        println!("\nplan_report: FAILURES (see above)");
        std::process::exit(1);
    }
}
