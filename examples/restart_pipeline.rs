//! A full production-style pipeline: evolve, periodically dump
//! checkpoints, kill the run, restart from the last dump, and continue —
//! verifying that the restarted trajectory is bit-identical to an
//! uninterrupted one.
//!
//! ```sh
//! cargo run --release --example restart_pipeline
//! ```

use amrio::enzo::evolve::{evolve_step, rebuild_refinement};
use amrio::enzo::{
    global_digest, IoStrategy, MpiIoOptimized, Platform, ProblemSize, SimConfig, SimState,
};
use amrio_mpi::World;
use amrio_mpiio::MpiIo;

fn main() {
    let nranks = 4;
    let platform = Platform::origin2000(nranks);
    let mut cfg = SimConfig::new(ProblemSize::Custom(32), nranks);
    cfg.cycles_per_dump = 2;

    // --- Run A: 4 cycles straight through. ---
    let world = World::new(nranks, platform.net.clone());
    let io = MpiIo::new(platform.fs.clone());
    let run_a = world.run(|c| {
        let mut st = SimState::init(c, cfg.clone());
        rebuild_refinement(c, &mut st);
        for _ in 0..4 {
            evolve_step(c, &mut st, 1.0);
        }
        global_digest(c, &st)
    });

    // --- Run B: 2 cycles, checkpoint, "crash", restart, 2 more. ---
    let world = World::new(nranks, platform.net.clone());
    let io2 = MpiIo::new(platform.fs.clone());
    let strategy = MpiIoOptimized;
    let run_b = world.run(|c| {
        {
            let mut st = SimState::init(c, cfg.clone());
            rebuild_refinement(c, &mut st);
            for _ in 0..2 {
                evolve_step(c, &mut st, 1.0);
            }
            strategy.write_checkpoint(c, &io2, &st, 1);
            // st dropped: the "crash".
        }
        let mut st = strategy.read_checkpoint(c, &io2, &cfg, 1);
        assert_eq!(st.cycle, 2, "restart resumes at the dumped cycle");
        for _ in 0..2 {
            evolve_step(c, &mut st, 1.0);
        }
        global_digest(c, &st)
    });
    let _ = io;

    println!("digest straight-through : {:016x}", run_a.results[0]);
    println!("digest crash+restart    : {:016x}", run_b.results[0]);
    assert_eq!(
        run_a.results[0], run_b.results[0],
        "restarted trajectory must match the uninterrupted one"
    );
    println!("restart pipeline verified: trajectories are identical");
}
