//! Compare the paper's three I/O strategies — serial HDF4, optimized
//! MPI-IO, and parallel HDF5 — on the same simulation and platform.
//!
//! ```sh
//! cargo run --release --example io_strategy_comparison
//! ```
//!
//! This is the experiment at the heart of the paper: same data, same
//! machine, three ways to move it. Expect MPI-IO fastest, HDF4 hurt by
//! the processor-0 bottleneck, and HDF5 hurt by its 2002-era library
//! overheads (paper §4.5).

use amrio::enzo::{
    Experiment, Hdf4Serial, Hdf5Parallel, IoStrategy, MpiIoOptimized, Platform, ProblemSize,
    SimConfig,
};

fn main() {
    let nranks = 8;
    let platform = Platform::origin2000(nranks);
    let cfg = SimConfig::new(ProblemSize::Custom(48), nranks);

    let strategies: Vec<Box<dyn IoStrategy>> = vec![
        Box::new(Hdf4Serial),
        Box::new(MpiIoOptimized),
        Box::new(Hdf5Parallel::default()),
    ];

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>6}",
        "strategy", "write[s]", "read[s]", "MB", "ok"
    );
    let mut times = Vec::new();
    for s in &strategies {
        let r = Experiment::new(&platform, &cfg, s.as_ref())
            .cycles(2)
            .run()
            .report;
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.1} {:>6}",
            r.strategy,
            r.write_time,
            r.read_time,
            r.bytes_written as f64 / 1e6,
            if r.verified { "yes" } else { "NO" }
        );
        times.push((r.strategy, r.write_time));
        assert!(r.verified);
    }

    let mpiio = times.iter().find(|(s, _)| *s == "MPI-IO").unwrap().1;
    let hdf5 = times.iter().find(|(s, _)| *s == "HDF5-parallel").unwrap().1;
    println!(
        "\nHDF5 write is {:.1}x slower than raw MPI-IO (paper Fig. 10 effect)",
        hdf5 / mpiio
    );
}
