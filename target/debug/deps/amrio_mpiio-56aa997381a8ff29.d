/root/repo/target/debug/deps/amrio_mpiio-56aa997381a8ff29.d: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_mpiio-56aa997381a8ff29.rmeta: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs Cargo.toml

crates/mpiio/src/lib.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
