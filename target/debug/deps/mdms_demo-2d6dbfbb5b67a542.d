/root/repo/target/debug/deps/mdms_demo-2d6dbfbb5b67a542.d: crates/bench/src/bin/mdms_demo.rs

/root/repo/target/debug/deps/mdms_demo-2d6dbfbb5b67a542: crates/bench/src/bin/mdms_demo.rs

crates/bench/src/bin/mdms_demo.rs:
