/root/repo/target/debug/deps/fig9-fe19d9d107ff0599.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-fe19d9d107ff0599: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
