/root/repo/target/debug/deps/checker-e128f40738c8fdb6.d: tests/checker.rs Cargo.toml

/root/repo/target/debug/deps/libchecker-e128f40738c8fdb6.rmeta: tests/checker.rs Cargo.toml

tests/checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
