/root/repo/target/debug/deps/proptests-469ebdabc6ff6a1a.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-469ebdabc6ff6a1a: tests/proptests.rs

tests/proptests.rs:
