/root/repo/target/debug/deps/amrio_enzo-b4b4960086684da7.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_enzo-b4b4960086684da7.rmeta: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/evolve.rs:
crates/core/src/ic.rs:
crates/core/src/io/mod.rs:
crates/core/src/io/hdf4.rs:
crates/core/src/io/hdf5.rs:
crates/core/src/io/mdms.rs:
crates/core/src/io/mpiio.rs:
crates/core/src/platform.rs:
crates/core/src/problem.rs:
crates/core/src/sort.rs:
crates/core/src/state.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
