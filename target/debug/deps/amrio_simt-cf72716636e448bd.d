/root/repo/target/debug/deps/amrio_simt-cf72716636e448bd.d: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_simt-cf72716636e448bd.rmeta: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs Cargo.toml

crates/simt/src/lib.rs:
crates/simt/src/bytes.rs:
crates/simt/src/engine.rs:
crates/simt/src/sync.rs:
crates/simt/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
