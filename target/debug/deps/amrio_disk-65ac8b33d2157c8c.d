/root/repo/target/debug/deps/amrio_disk-65ac8b33d2157c8c.d: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

/root/repo/target/debug/deps/amrio_disk-65ac8b33d2157c8c: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

crates/disk/src/lib.rs:
crates/disk/src/dev.rs:
crates/disk/src/fs.rs:
crates/disk/src/presets.rs:
crates/disk/src/store.rs:
crates/disk/src/trace.rs:
