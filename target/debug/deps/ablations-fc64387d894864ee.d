/root/repo/target/debug/deps/ablations-fc64387d894864ee.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-fc64387d894864ee: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
