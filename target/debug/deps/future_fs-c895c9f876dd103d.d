/root/repo/target/debug/deps/future_fs-c895c9f876dd103d.d: crates/bench/src/bin/future_fs.rs

/root/repo/target/debug/deps/future_fs-c895c9f876dd103d: crates/bench/src/bin/future_fs.rs

crates/bench/src/bin/future_fs.rs:
