/root/repo/target/debug/deps/amrio_amr-bb9442e718c2339d.d: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

/root/repo/target/debug/deps/amrio_amr-bb9442e718c2339d: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

crates/amr/src/lib.rs:
crates/amr/src/array.rs:
crates/amr/src/balance.rs:
crates/amr/src/decomp.rs:
crates/amr/src/grid.rs:
crates/amr/src/particles.rs:
crates/amr/src/refine.rs:
crates/amr/src/solver.rs:
