/root/repo/target/debug/deps/amrio_check-544b272df145d77d.d: crates/check/src/lib.rs crates/check/src/conform.rs

/root/repo/target/debug/deps/libamrio_check-544b272df145d77d.rlib: crates/check/src/lib.rs crates/check/src/conform.rs

/root/repo/target/debug/deps/libamrio_check-544b272df145d77d.rmeta: crates/check/src/lib.rs crates/check/src/conform.rs

crates/check/src/lib.rs:
crates/check/src/conform.rs:
