/root/repo/target/debug/deps/determinism-0fb408cb5753b883.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-0fb408cb5753b883: tests/determinism.rs

tests/determinism.rs:
