/root/repo/target/debug/deps/amrio_bench-24185c41f36c9a37.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_bench-24185c41f36c9a37.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
