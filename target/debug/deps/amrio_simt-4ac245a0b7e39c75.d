/root/repo/target/debug/deps/amrio_simt-4ac245a0b7e39c75.d: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

/root/repo/target/debug/deps/amrio_simt-4ac245a0b7e39c75: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

crates/simt/src/lib.rs:
crates/simt/src/bytes.rs:
crates/simt/src/engine.rs:
crates/simt/src/sync.rs:
crates/simt/src/time.rs:
