/root/repo/target/debug/deps/amrio-96c2e7667bba2d63.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio-96c2e7667bba2d63.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
