/root/repo/target/debug/deps/all-eade53d8793bdd2f.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-eade53d8793bdd2f.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
