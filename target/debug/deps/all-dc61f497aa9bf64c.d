/root/repo/target/debug/deps/all-dc61f497aa9bf64c.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-dc61f497aa9bf64c.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
