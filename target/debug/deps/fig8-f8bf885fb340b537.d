/root/repo/target/debug/deps/fig8-f8bf885fb340b537.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-f8bf885fb340b537: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
