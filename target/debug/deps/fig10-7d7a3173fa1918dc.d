/root/repo/target/debug/deps/fig10-7d7a3173fa1918dc.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-7d7a3173fa1918dc: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
