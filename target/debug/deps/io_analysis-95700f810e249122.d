/root/repo/target/debug/deps/io_analysis-95700f810e249122.d: crates/bench/src/bin/io_analysis.rs

/root/repo/target/debug/deps/io_analysis-95700f810e249122: crates/bench/src/bin/io_analysis.rs

crates/bench/src/bin/io_analysis.rs:
