/root/repo/target/debug/deps/fig10-d729aab0d2a7d209.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-d729aab0d2a7d209: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
