/root/repo/target/debug/deps/fig10-54c4f6fdcb96b9d3.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-54c4f6fdcb96b9d3: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
