/root/repo/target/debug/deps/io_analysis-4bdcbf5ab761bb40.d: crates/bench/src/bin/io_analysis.rs

/root/repo/target/debug/deps/io_analysis-4bdcbf5ab761bb40: crates/bench/src/bin/io_analysis.rs

crates/bench/src/bin/io_analysis.rs:
