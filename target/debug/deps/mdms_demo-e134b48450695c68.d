/root/repo/target/debug/deps/mdms_demo-e134b48450695c68.d: crates/bench/src/bin/mdms_demo.rs Cargo.toml

/root/repo/target/debug/deps/libmdms_demo-e134b48450695c68.rmeta: crates/bench/src/bin/mdms_demo.rs Cargo.toml

crates/bench/src/bin/mdms_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
