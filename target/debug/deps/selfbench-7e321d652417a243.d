/root/repo/target/debug/deps/selfbench-7e321d652417a243.d: crates/bench/src/bin/selfbench.rs Cargo.toml

/root/repo/target/debug/deps/libselfbench-7e321d652417a243.rmeta: crates/bench/src/bin/selfbench.rs Cargo.toml

crates/bench/src/bin/selfbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
