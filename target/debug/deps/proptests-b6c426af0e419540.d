/root/repo/target/debug/deps/proptests-b6c426af0e419540.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-b6c426af0e419540: tests/proptests.rs

tests/proptests.rs:
