/root/repo/target/debug/deps/amrio_bench-33f8796e0ca6d400.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/amrio_bench-33f8796e0ca6d400: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
