/root/repo/target/debug/deps/amrio-a863f773914a745a.d: src/lib.rs

/root/repo/target/debug/deps/amrio-a863f773914a745a: src/lib.rs

src/lib.rs:
