/root/repo/target/debug/deps/fig6-f9d236e73e0f8208.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f9d236e73e0f8208: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
