/root/repo/target/debug/deps/proptests-b0c2d90ead9fca40.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b0c2d90ead9fca40.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
