/root/repo/target/debug/deps/table1-932a7f4ea47d23cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-932a7f4ea47d23cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
