/root/repo/target/debug/deps/amrio_check-a6816acd19a52049.d: crates/check/src/lib.rs crates/check/src/conform.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_check-a6816acd19a52049.rmeta: crates/check/src/lib.rs crates/check/src/conform.rs Cargo.toml

crates/check/src/lib.rs:
crates/check/src/conform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
