/root/repo/target/debug/deps/amrio_net-c29d3b0c072737bf.d: crates/net/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_net-c29d3b0c072737bf.rmeta: crates/net/src/lib.rs Cargo.toml

crates/net/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
