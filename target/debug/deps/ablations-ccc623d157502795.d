/root/repo/target/debug/deps/ablations-ccc623d157502795.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ccc623d157502795.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
