/root/repo/target/debug/deps/all-ee550c5fd4fb276f.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-ee550c5fd4fb276f: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
