/root/repo/target/debug/deps/amrio-93c088bfedd71e67.d: src/lib.rs

/root/repo/target/debug/deps/libamrio-93c088bfedd71e67.rlib: src/lib.rs

/root/repo/target/debug/deps/libamrio-93c088bfedd71e67.rmeta: src/lib.rs

src/lib.rs:
