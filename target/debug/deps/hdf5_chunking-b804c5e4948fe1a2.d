/root/repo/target/debug/deps/hdf5_chunking-b804c5e4948fe1a2.d: crates/bench/src/bin/hdf5_chunking.rs

/root/repo/target/debug/deps/hdf5_chunking-b804c5e4948fe1a2: crates/bench/src/bin/hdf5_chunking.rs

crates/bench/src/bin/hdf5_chunking.rs:
