/root/repo/target/debug/deps/fig8-6cd26898a00b21c3.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-6cd26898a00b21c3: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
