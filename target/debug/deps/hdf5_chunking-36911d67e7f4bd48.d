/root/repo/target/debug/deps/hdf5_chunking-36911d67e7f4bd48.d: crates/bench/src/bin/hdf5_chunking.rs

/root/repo/target/debug/deps/hdf5_chunking-36911d67e7f4bd48: crates/bench/src/bin/hdf5_chunking.rs

crates/bench/src/bin/hdf5_chunking.rs:
