/root/repo/target/debug/deps/fig7-dba2e38fbe009b84.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-dba2e38fbe009b84: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
