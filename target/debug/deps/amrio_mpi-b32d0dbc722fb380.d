/root/repo/target/debug/deps/amrio_mpi-b32d0dbc722fb380.d: crates/mpi/src/lib.rs crates/mpi/src/coll.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_mpi-b32d0dbc722fb380.rmeta: crates/mpi/src/lib.rs crates/mpi/src/coll.rs Cargo.toml

crates/mpi/src/lib.rs:
crates/mpi/src/coll.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
