/root/repo/target/debug/deps/amrio_hdf4-8f3e7bf419d48193.d: crates/hdf4/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_hdf4-8f3e7bf419d48193.rmeta: crates/hdf4/src/lib.rs Cargo.toml

crates/hdf4/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
