/root/repo/target/debug/deps/checkpoint_equivalence-bcafaf8665481fae.d: tests/checkpoint_equivalence.rs

/root/repo/target/debug/deps/checkpoint_equivalence-bcafaf8665481fae: tests/checkpoint_equivalence.rs

tests/checkpoint_equivalence.rs:
