/root/repo/target/debug/deps/future_fs-6360e9f60e81dbf9.d: crates/bench/src/bin/future_fs.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_fs-6360e9f60e81dbf9.rmeta: crates/bench/src/bin/future_fs.rs Cargo.toml

crates/bench/src/bin/future_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
