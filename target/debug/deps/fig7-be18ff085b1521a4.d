/root/repo/target/debug/deps/fig7-be18ff085b1521a4.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-be18ff085b1521a4: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
