/root/repo/target/debug/deps/fig7-e1480848ff439d79.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-e1480848ff439d79: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
