/root/repo/target/debug/deps/amrio_hdf4-7e2df0bc8dd95b7a.d: crates/hdf4/src/lib.rs

/root/repo/target/debug/deps/amrio_hdf4-7e2df0bc8dd95b7a: crates/hdf4/src/lib.rs

crates/hdf4/src/lib.rs:
