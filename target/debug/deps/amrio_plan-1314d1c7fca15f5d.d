/root/repo/target/debug/deps/amrio_plan-1314d1c7fca15f5d.d: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs crates/plan/src/tests.rs

/root/repo/target/debug/deps/amrio_plan-1314d1c7fca15f5d: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs crates/plan/src/tests.rs

crates/plan/src/lib.rs:
crates/plan/src/conformance.rs:
crates/plan/src/footprint.rs:
crates/plan/src/metrics.rs:
crates/plan/src/schedule.rs:
crates/plan/src/verify.rs:
crates/plan/src/tests.rs:
