/root/repo/target/debug/deps/amrio_amr-bc69a82d1016b14b.d: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

/root/repo/target/debug/deps/libamrio_amr-bc69a82d1016b14b.rlib: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

/root/repo/target/debug/deps/libamrio_amr-bc69a82d1016b14b.rmeta: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

crates/amr/src/lib.rs:
crates/amr/src/array.rs:
crates/amr/src/balance.rs:
crates/amr/src/decomp.rs:
crates/amr/src/grid.rs:
crates/amr/src/particles.rs:
crates/amr/src/refine.rs:
crates/amr/src/solver.rs:
