/root/repo/target/debug/deps/amrio_bench-da59a260ebc7da9b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/amrio_bench-da59a260ebc7da9b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
