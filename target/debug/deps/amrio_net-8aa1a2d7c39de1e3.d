/root/repo/target/debug/deps/amrio_net-8aa1a2d7c39de1e3.d: crates/net/src/lib.rs

/root/repo/target/debug/deps/libamrio_net-8aa1a2d7c39de1e3.rlib: crates/net/src/lib.rs

/root/repo/target/debug/deps/libamrio_net-8aa1a2d7c39de1e3.rmeta: crates/net/src/lib.rs

crates/net/src/lib.rs:
