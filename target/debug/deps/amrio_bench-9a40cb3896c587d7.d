/root/repo/target/debug/deps/amrio_bench-9a40cb3896c587d7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libamrio_bench-9a40cb3896c587d7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libamrio_bench-9a40cb3896c587d7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
