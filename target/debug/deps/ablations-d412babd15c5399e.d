/root/repo/target/debug/deps/ablations-d412babd15c5399e.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-d412babd15c5399e.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
