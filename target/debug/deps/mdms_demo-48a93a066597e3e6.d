/root/repo/target/debug/deps/mdms_demo-48a93a066597e3e6.d: crates/bench/src/bin/mdms_demo.rs

/root/repo/target/debug/deps/mdms_demo-48a93a066597e3e6: crates/bench/src/bin/mdms_demo.rs

crates/bench/src/bin/mdms_demo.rs:
