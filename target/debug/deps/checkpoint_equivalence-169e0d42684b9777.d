/root/repo/target/debug/deps/checkpoint_equivalence-169e0d42684b9777.d: tests/checkpoint_equivalence.rs

/root/repo/target/debug/deps/checkpoint_equivalence-169e0d42684b9777: tests/checkpoint_equivalence.rs

tests/checkpoint_equivalence.rs:
