/root/repo/target/debug/deps/amrio_hdf5-e9248781b5a2a502.d: crates/hdf5/src/lib.rs

/root/repo/target/debug/deps/amrio_hdf5-e9248781b5a2a502: crates/hdf5/src/lib.rs

crates/hdf5/src/lib.rs:
