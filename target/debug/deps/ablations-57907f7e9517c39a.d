/root/repo/target/debug/deps/ablations-57907f7e9517c39a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-57907f7e9517c39a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
