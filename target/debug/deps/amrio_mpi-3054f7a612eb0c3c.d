/root/repo/target/debug/deps/amrio_mpi-3054f7a612eb0c3c.d: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

/root/repo/target/debug/deps/libamrio_mpi-3054f7a612eb0c3c.rlib: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

/root/repo/target/debug/deps/libamrio_mpi-3054f7a612eb0c3c.rmeta: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

crates/mpi/src/lib.rs:
crates/mpi/src/coll.rs:
