/root/repo/target/debug/deps/all-ad0b1e44824db3f4.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-ad0b1e44824db3f4.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
