/root/repo/target/debug/deps/determinism-f86e2fa9c3a5c997.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f86e2fa9c3a5c997: tests/determinism.rs

tests/determinism.rs:
