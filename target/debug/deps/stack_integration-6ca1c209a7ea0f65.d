/root/repo/target/debug/deps/stack_integration-6ca1c209a7ea0f65.d: tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-6ca1c209a7ea0f65: tests/stack_integration.rs

tests/stack_integration.rs:
