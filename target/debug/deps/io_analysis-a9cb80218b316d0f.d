/root/repo/target/debug/deps/io_analysis-a9cb80218b316d0f.d: crates/bench/src/bin/io_analysis.rs

/root/repo/target/debug/deps/io_analysis-a9cb80218b316d0f: crates/bench/src/bin/io_analysis.rs

crates/bench/src/bin/io_analysis.rs:
