/root/repo/target/debug/deps/amrio-22e95a0709402851.d: src/lib.rs

/root/repo/target/debug/deps/amrio-22e95a0709402851: src/lib.rs

src/lib.rs:
