/root/repo/target/debug/deps/amrio_check-7bbd2006a80090ed.d: crates/check/src/lib.rs crates/check/src/conform.rs

/root/repo/target/debug/deps/amrio_check-7bbd2006a80090ed: crates/check/src/lib.rs crates/check/src/conform.rs

crates/check/src/lib.rs:
crates/check/src/conform.rs:
