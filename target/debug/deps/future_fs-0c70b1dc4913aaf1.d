/root/repo/target/debug/deps/future_fs-0c70b1dc4913aaf1.d: crates/bench/src/bin/future_fs.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_fs-0c70b1dc4913aaf1.rmeta: crates/bench/src/bin/future_fs.rs Cargo.toml

crates/bench/src/bin/future_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
