/root/repo/target/debug/deps/mdms_demo-59566570ff39e2a4.d: crates/bench/src/bin/mdms_demo.rs

/root/repo/target/debug/deps/mdms_demo-59566570ff39e2a4: crates/bench/src/bin/mdms_demo.rs

crates/bench/src/bin/mdms_demo.rs:
