/root/repo/target/debug/deps/plan_conformance-75f52e7fe0123d7e.d: tests/plan_conformance.rs

/root/repo/target/debug/deps/plan_conformance-75f52e7fe0123d7e: tests/plan_conformance.rs

tests/plan_conformance.rs:
