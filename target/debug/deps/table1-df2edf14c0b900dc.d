/root/repo/target/debug/deps/table1-df2edf14c0b900dc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-df2edf14c0b900dc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
