/root/repo/target/debug/deps/fig9-faaeec5bfab5e592.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-faaeec5bfab5e592: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
