/root/repo/target/debug/deps/amrio_simt-81c201fcf267e399.d: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

/root/repo/target/debug/deps/libamrio_simt-81c201fcf267e399.rlib: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

/root/repo/target/debug/deps/libamrio_simt-81c201fcf267e399.rmeta: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

crates/simt/src/lib.rs:
crates/simt/src/bytes.rs:
crates/simt/src/engine.rs:
crates/simt/src/sync.rs:
crates/simt/src/time.rs:
