/root/repo/target/debug/deps/amrio_amr-ceb8ed1cc2334d8c.d: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_amr-ceb8ed1cc2334d8c.rmeta: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs Cargo.toml

crates/amr/src/lib.rs:
crates/amr/src/array.rs:
crates/amr/src/balance.rs:
crates/amr/src/decomp.rs:
crates/amr/src/grid.rs:
crates/amr/src/particles.rs:
crates/amr/src/refine.rs:
crates/amr/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
