/root/repo/target/debug/deps/golden_bytes-a9e2801c29ae7f63.d: tests/golden_bytes.rs

/root/repo/target/debug/deps/golden_bytes-a9e2801c29ae7f63: tests/golden_bytes.rs

tests/golden_bytes.rs:
