/root/repo/target/debug/deps/proptests-02476a2de9218278.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-02476a2de9218278.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
