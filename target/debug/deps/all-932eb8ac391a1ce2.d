/root/repo/target/debug/deps/all-932eb8ac391a1ce2.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-932eb8ac391a1ce2: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
