/root/repo/target/debug/deps/amrio_mdms-d274f04b2b3c9d54.d: crates/mdms/src/lib.rs

/root/repo/target/debug/deps/libamrio_mdms-d274f04b2b3c9d54.rlib: crates/mdms/src/lib.rs

/root/repo/target/debug/deps/libamrio_mdms-d274f04b2b3c9d54.rmeta: crates/mdms/src/lib.rs

crates/mdms/src/lib.rs:
