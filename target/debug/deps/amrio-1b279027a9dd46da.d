/root/repo/target/debug/deps/amrio-1b279027a9dd46da.d: src/lib.rs

/root/repo/target/debug/deps/libamrio-1b279027a9dd46da.rlib: src/lib.rs

/root/repo/target/debug/deps/libamrio-1b279027a9dd46da.rmeta: src/lib.rs

src/lib.rs:
