/root/repo/target/debug/deps/fig6-1abb79d368dd19b7.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-1abb79d368dd19b7: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
