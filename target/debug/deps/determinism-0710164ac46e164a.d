/root/repo/target/debug/deps/determinism-0710164ac46e164a.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-0710164ac46e164a.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
