/root/repo/target/debug/deps/future_fs-c1d97c31046363a7.d: crates/bench/src/bin/future_fs.rs

/root/repo/target/debug/deps/future_fs-c1d97c31046363a7: crates/bench/src/bin/future_fs.rs

crates/bench/src/bin/future_fs.rs:
