/root/repo/target/debug/deps/amrio_enzo-bf025ed7ea7eefa9.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/amrio_enzo-bf025ed7ea7eefa9: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/evolve.rs:
crates/core/src/ic.rs:
crates/core/src/io/mod.rs:
crates/core/src/io/hdf4.rs:
crates/core/src/io/hdf5.rs:
crates/core/src/io/mdms.rs:
crates/core/src/io/mpiio.rs:
crates/core/src/platform.rs:
crates/core/src/problem.rs:
crates/core/src/sort.rs:
crates/core/src/state.rs:
crates/core/src/wire.rs:
