/root/repo/target/debug/deps/amrio_hdf4-f4d81576a8df036d.d: crates/hdf4/src/lib.rs

/root/repo/target/debug/deps/libamrio_hdf4-f4d81576a8df036d.rlib: crates/hdf4/src/lib.rs

/root/repo/target/debug/deps/libamrio_hdf4-f4d81576a8df036d.rmeta: crates/hdf4/src/lib.rs

crates/hdf4/src/lib.rs:
