/root/repo/target/debug/deps/amrio-70f4875e963ca763.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio-70f4875e963ca763.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
