/root/repo/target/debug/deps/amrio_mpiio-ee378bc1d5160780.d: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

/root/repo/target/debug/deps/amrio_mpiio-ee378bc1d5160780: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

crates/mpiio/src/lib.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/file.rs:
