/root/repo/target/debug/deps/ablations-1c1aec1ebb695ff1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-1c1aec1ebb695ff1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
