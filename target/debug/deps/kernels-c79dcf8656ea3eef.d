/root/repo/target/debug/deps/kernels-c79dcf8656ea3eef.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-c79dcf8656ea3eef.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
