/root/repo/target/debug/deps/checker-ef1f0b86b32d4fd7.d: tests/checker.rs

/root/repo/target/debug/deps/checker-ef1f0b86b32d4fd7: tests/checker.rs

tests/checker.rs:
