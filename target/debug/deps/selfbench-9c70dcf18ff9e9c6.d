/root/repo/target/debug/deps/selfbench-9c70dcf18ff9e9c6.d: crates/bench/src/bin/selfbench.rs

/root/repo/target/debug/deps/selfbench-9c70dcf18ff9e9c6: crates/bench/src/bin/selfbench.rs

crates/bench/src/bin/selfbench.rs:
