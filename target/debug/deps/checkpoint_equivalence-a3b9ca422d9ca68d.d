/root/repo/target/debug/deps/checkpoint_equivalence-a3b9ca422d9ca68d.d: tests/checkpoint_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_equivalence-a3b9ca422d9ca68d.rmeta: tests/checkpoint_equivalence.rs Cargo.toml

tests/checkpoint_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
