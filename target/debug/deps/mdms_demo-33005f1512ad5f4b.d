/root/repo/target/debug/deps/mdms_demo-33005f1512ad5f4b.d: crates/bench/src/bin/mdms_demo.rs Cargo.toml

/root/repo/target/debug/deps/libmdms_demo-33005f1512ad5f4b.rmeta: crates/bench/src/bin/mdms_demo.rs Cargo.toml

crates/bench/src/bin/mdms_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
