/root/repo/target/debug/deps/amrio_net-de870dfdfeff2d9c.d: crates/net/src/lib.rs

/root/repo/target/debug/deps/amrio_net-de870dfdfeff2d9c: crates/net/src/lib.rs

crates/net/src/lib.rs:
