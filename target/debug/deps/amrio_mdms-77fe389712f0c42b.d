/root/repo/target/debug/deps/amrio_mdms-77fe389712f0c42b.d: crates/mdms/src/lib.rs

/root/repo/target/debug/deps/amrio_mdms-77fe389712f0c42b: crates/mdms/src/lib.rs

crates/mdms/src/lib.rs:
