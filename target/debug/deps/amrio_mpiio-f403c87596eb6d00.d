/root/repo/target/debug/deps/amrio_mpiio-f403c87596eb6d00.d: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

/root/repo/target/debug/deps/libamrio_mpiio-f403c87596eb6d00.rlib: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

/root/repo/target/debug/deps/libamrio_mpiio-f403c87596eb6d00.rmeta: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

crates/mpiio/src/lib.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/file.rs:
