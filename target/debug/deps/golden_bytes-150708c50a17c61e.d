/root/repo/target/debug/deps/golden_bytes-150708c50a17c61e.d: tests/golden_bytes.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_bytes-150708c50a17c61e.rmeta: tests/golden_bytes.rs Cargo.toml

tests/golden_bytes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
