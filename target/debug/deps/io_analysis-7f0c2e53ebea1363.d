/root/repo/target/debug/deps/io_analysis-7f0c2e53ebea1363.d: crates/bench/src/bin/io_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libio_analysis-7f0c2e53ebea1363.rmeta: crates/bench/src/bin/io_analysis.rs Cargo.toml

crates/bench/src/bin/io_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
