/root/repo/target/debug/deps/table1-692ce814b4ad0718.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-692ce814b4ad0718: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
