/root/repo/target/debug/deps/amrio_plan-14dff2b16f70c054.d: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs crates/plan/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_plan-14dff2b16f70c054.rmeta: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs crates/plan/src/tests.rs Cargo.toml

crates/plan/src/lib.rs:
crates/plan/src/conformance.rs:
crates/plan/src/footprint.rs:
crates/plan/src/metrics.rs:
crates/plan/src/schedule.rs:
crates/plan/src/verify.rs:
crates/plan/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
