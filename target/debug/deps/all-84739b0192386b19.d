/root/repo/target/debug/deps/all-84739b0192386b19.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-84739b0192386b19: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
