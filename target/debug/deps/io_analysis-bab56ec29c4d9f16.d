/root/repo/target/debug/deps/io_analysis-bab56ec29c4d9f16.d: crates/bench/src/bin/io_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libio_analysis-bab56ec29c4d9f16.rmeta: crates/bench/src/bin/io_analysis.rs Cargo.toml

crates/bench/src/bin/io_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
