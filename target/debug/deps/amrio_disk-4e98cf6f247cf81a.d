/root/repo/target/debug/deps/amrio_disk-4e98cf6f247cf81a.d: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

/root/repo/target/debug/deps/libamrio_disk-4e98cf6f247cf81a.rlib: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

/root/repo/target/debug/deps/libamrio_disk-4e98cf6f247cf81a.rmeta: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

crates/disk/src/lib.rs:
crates/disk/src/dev.rs:
crates/disk/src/fs.rs:
crates/disk/src/presets.rs:
crates/disk/src/store.rs:
crates/disk/src/trace.rs:
