/root/repo/target/debug/deps/hdf5_chunking-fd70da522af0676a.d: crates/bench/src/bin/hdf5_chunking.rs

/root/repo/target/debug/deps/hdf5_chunking-fd70da522af0676a: crates/bench/src/bin/hdf5_chunking.rs

crates/bench/src/bin/hdf5_chunking.rs:
