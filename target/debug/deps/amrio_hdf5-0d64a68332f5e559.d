/root/repo/target/debug/deps/amrio_hdf5-0d64a68332f5e559.d: crates/hdf5/src/lib.rs

/root/repo/target/debug/deps/libamrio_hdf5-0d64a68332f5e559.rlib: crates/hdf5/src/lib.rs

/root/repo/target/debug/deps/libamrio_hdf5-0d64a68332f5e559.rmeta: crates/hdf5/src/lib.rs

crates/hdf5/src/lib.rs:
