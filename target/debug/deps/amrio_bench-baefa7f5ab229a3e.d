/root/repo/target/debug/deps/amrio_bench-baefa7f5ab229a3e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libamrio_bench-baefa7f5ab229a3e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libamrio_bench-baefa7f5ab229a3e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
