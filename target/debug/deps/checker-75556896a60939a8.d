/root/repo/target/debug/deps/checker-75556896a60939a8.d: tests/checker.rs

/root/repo/target/debug/deps/checker-75556896a60939a8: tests/checker.rs

tests/checker.rs:
