/root/repo/target/debug/deps/amrio-29730215352e83ec.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio-29730215352e83ec.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
