/root/repo/target/debug/deps/fig8-b02341970dc7f2f6.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-b02341970dc7f2f6: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
