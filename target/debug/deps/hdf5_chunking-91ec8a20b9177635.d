/root/repo/target/debug/deps/hdf5_chunking-91ec8a20b9177635.d: crates/bench/src/bin/hdf5_chunking.rs Cargo.toml

/root/repo/target/debug/deps/libhdf5_chunking-91ec8a20b9177635.rmeta: crates/bench/src/bin/hdf5_chunking.rs Cargo.toml

crates/bench/src/bin/hdf5_chunking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
