/root/repo/target/debug/deps/amrio_amr-919a580ce128d42e.d: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_amr-919a580ce128d42e.rmeta: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs Cargo.toml

crates/amr/src/lib.rs:
crates/amr/src/array.rs:
crates/amr/src/balance.rs:
crates/amr/src/decomp.rs:
crates/amr/src/grid.rs:
crates/amr/src/particles.rs:
crates/amr/src/refine.rs:
crates/amr/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
