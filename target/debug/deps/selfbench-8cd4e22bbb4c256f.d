/root/repo/target/debug/deps/selfbench-8cd4e22bbb4c256f.d: crates/bench/src/bin/selfbench.rs Cargo.toml

/root/repo/target/debug/deps/libselfbench-8cd4e22bbb4c256f.rmeta: crates/bench/src/bin/selfbench.rs Cargo.toml

crates/bench/src/bin/selfbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
