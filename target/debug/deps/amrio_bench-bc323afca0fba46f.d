/root/repo/target/debug/deps/amrio_bench-bc323afca0fba46f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_bench-bc323afca0fba46f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
