/root/repo/target/debug/deps/amrio_plan-cd7ebb4e6456bfb4.d: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs

/root/repo/target/debug/deps/libamrio_plan-cd7ebb4e6456bfb4.rlib: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs

/root/repo/target/debug/deps/libamrio_plan-cd7ebb4e6456bfb4.rmeta: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs

crates/plan/src/lib.rs:
crates/plan/src/conformance.rs:
crates/plan/src/footprint.rs:
crates/plan/src/metrics.rs:
crates/plan/src/schedule.rs:
crates/plan/src/verify.rs:
