/root/repo/target/debug/deps/future_fs-0271a488f34ab13a.d: crates/bench/src/bin/future_fs.rs

/root/repo/target/debug/deps/future_fs-0271a488f34ab13a: crates/bench/src/bin/future_fs.rs

crates/bench/src/bin/future_fs.rs:
