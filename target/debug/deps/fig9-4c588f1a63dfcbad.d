/root/repo/target/debug/deps/fig9-4c588f1a63dfcbad.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-4c588f1a63dfcbad: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
