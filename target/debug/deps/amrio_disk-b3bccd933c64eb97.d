/root/repo/target/debug/deps/amrio_disk-b3bccd933c64eb97.d: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_disk-b3bccd933c64eb97.rmeta: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs Cargo.toml

crates/disk/src/lib.rs:
crates/disk/src/dev.rs:
crates/disk/src/fs.rs:
crates/disk/src/presets.rs:
crates/disk/src/store.rs:
crates/disk/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
