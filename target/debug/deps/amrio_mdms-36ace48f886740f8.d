/root/repo/target/debug/deps/amrio_mdms-36ace48f886740f8.d: crates/mdms/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_mdms-36ace48f886740f8.rmeta: crates/mdms/src/lib.rs Cargo.toml

crates/mdms/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
