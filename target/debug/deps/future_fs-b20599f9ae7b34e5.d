/root/repo/target/debug/deps/future_fs-b20599f9ae7b34e5.d: crates/bench/src/bin/future_fs.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_fs-b20599f9ae7b34e5.rmeta: crates/bench/src/bin/future_fs.rs Cargo.toml

crates/bench/src/bin/future_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
