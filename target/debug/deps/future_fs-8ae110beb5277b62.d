/root/repo/target/debug/deps/future_fs-8ae110beb5277b62.d: crates/bench/src/bin/future_fs.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_fs-8ae110beb5277b62.rmeta: crates/bench/src/bin/future_fs.rs Cargo.toml

crates/bench/src/bin/future_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
