/root/repo/target/debug/deps/stack_integration-50d6f96962271987.d: tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-50d6f96962271987: tests/stack_integration.rs

tests/stack_integration.rs:
