/root/repo/target/debug/deps/amrio_hdf5-e41f5e0f8a58e1fa.d: crates/hdf5/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamrio_hdf5-e41f5e0f8a58e1fa.rmeta: crates/hdf5/src/lib.rs Cargo.toml

crates/hdf5/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
