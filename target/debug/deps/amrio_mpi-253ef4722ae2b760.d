/root/repo/target/debug/deps/amrio_mpi-253ef4722ae2b760.d: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

/root/repo/target/debug/deps/amrio_mpi-253ef4722ae2b760: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

crates/mpi/src/lib.rs:
crates/mpi/src/coll.rs:
