/root/repo/target/debug/deps/fig6-2b56e24d1be357ce.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-2b56e24d1be357ce: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
