/root/repo/target/debug/examples/io_strategy_comparison-1ba5270f67f3ad66.d: examples/io_strategy_comparison.rs

/root/repo/target/debug/examples/io_strategy_comparison-1ba5270f67f3ad66: examples/io_strategy_comparison.rs

examples/io_strategy_comparison.rs:
