/root/repo/target/debug/examples/viz_extract-50a7797ad81f9e13.d: examples/viz_extract.rs Cargo.toml

/root/repo/target/debug/examples/libviz_extract-50a7797ad81f9e13.rmeta: examples/viz_extract.rs Cargo.toml

examples/viz_extract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
