/root/repo/target/debug/examples/cosmology_run-3e532db57d5a8865.d: examples/cosmology_run.rs Cargo.toml

/root/repo/target/debug/examples/libcosmology_run-3e532db57d5a8865.rmeta: examples/cosmology_run.rs Cargo.toml

examples/cosmology_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
