/root/repo/target/debug/examples/io_strategy_comparison-27d7927d63e40f0c.d: examples/io_strategy_comparison.rs

/root/repo/target/debug/examples/io_strategy_comparison-27d7927d63e40f0c: examples/io_strategy_comparison.rs

examples/io_strategy_comparison.rs:
