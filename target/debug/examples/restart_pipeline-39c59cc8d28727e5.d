/root/repo/target/debug/examples/restart_pipeline-39c59cc8d28727e5.d: examples/restart_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/librestart_pipeline-39c59cc8d28727e5.rmeta: examples/restart_pipeline.rs Cargo.toml

examples/restart_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
