/root/repo/target/debug/examples/cosmology_run-754d747db655a48a.d: examples/cosmology_run.rs

/root/repo/target/debug/examples/cosmology_run-754d747db655a48a: examples/cosmology_run.rs

examples/cosmology_run.rs:
