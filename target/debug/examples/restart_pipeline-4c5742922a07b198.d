/root/repo/target/debug/examples/restart_pipeline-4c5742922a07b198.d: examples/restart_pipeline.rs

/root/repo/target/debug/examples/restart_pipeline-4c5742922a07b198: examples/restart_pipeline.rs

examples/restart_pipeline.rs:
