/root/repo/target/debug/examples/quickstart-f30edbc87b7f5f10.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f30edbc87b7f5f10: examples/quickstart.rs

examples/quickstart.rs:
