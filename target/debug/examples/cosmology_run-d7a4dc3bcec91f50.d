/root/repo/target/debug/examples/cosmology_run-d7a4dc3bcec91f50.d: examples/cosmology_run.rs Cargo.toml

/root/repo/target/debug/examples/libcosmology_run-d7a4dc3bcec91f50.rmeta: examples/cosmology_run.rs Cargo.toml

examples/cosmology_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
