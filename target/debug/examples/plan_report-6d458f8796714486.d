/root/repo/target/debug/examples/plan_report-6d458f8796714486.d: examples/plan_report.rs Cargo.toml

/root/repo/target/debug/examples/libplan_report-6d458f8796714486.rmeta: examples/plan_report.rs Cargo.toml

examples/plan_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
