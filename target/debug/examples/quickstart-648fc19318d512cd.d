/root/repo/target/debug/examples/quickstart-648fc19318d512cd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-648fc19318d512cd: examples/quickstart.rs

examples/quickstart.rs:
