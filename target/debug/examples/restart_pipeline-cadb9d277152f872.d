/root/repo/target/debug/examples/restart_pipeline-cadb9d277152f872.d: examples/restart_pipeline.rs

/root/repo/target/debug/examples/restart_pipeline-cadb9d277152f872: examples/restart_pipeline.rs

examples/restart_pipeline.rs:
