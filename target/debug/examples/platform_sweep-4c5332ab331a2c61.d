/root/repo/target/debug/examples/platform_sweep-4c5332ab331a2c61.d: examples/platform_sweep.rs

/root/repo/target/debug/examples/platform_sweep-4c5332ab331a2c61: examples/platform_sweep.rs

examples/platform_sweep.rs:
