/root/repo/target/debug/examples/viz_extract-deca4be52826920c.d: examples/viz_extract.rs Cargo.toml

/root/repo/target/debug/examples/libviz_extract-deca4be52826920c.rmeta: examples/viz_extract.rs Cargo.toml

examples/viz_extract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
