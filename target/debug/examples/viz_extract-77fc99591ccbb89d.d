/root/repo/target/debug/examples/viz_extract-77fc99591ccbb89d.d: examples/viz_extract.rs

/root/repo/target/debug/examples/viz_extract-77fc99591ccbb89d: examples/viz_extract.rs

examples/viz_extract.rs:
