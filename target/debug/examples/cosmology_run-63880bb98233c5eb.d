/root/repo/target/debug/examples/cosmology_run-63880bb98233c5eb.d: examples/cosmology_run.rs

/root/repo/target/debug/examples/cosmology_run-63880bb98233c5eb: examples/cosmology_run.rs

examples/cosmology_run.rs:
