/root/repo/target/debug/examples/checked_run-169e6dd9928af29b.d: examples/checked_run.rs

/root/repo/target/debug/examples/checked_run-169e6dd9928af29b: examples/checked_run.rs

examples/checked_run.rs:
