/root/repo/target/debug/examples/checked_run-5b624034c9035618.d: examples/checked_run.rs Cargo.toml

/root/repo/target/debug/examples/libchecked_run-5b624034c9035618.rmeta: examples/checked_run.rs Cargo.toml

examples/checked_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
