/root/repo/target/debug/examples/checked_run-e6699d33eae158e7.d: examples/checked_run.rs

/root/repo/target/debug/examples/checked_run-e6699d33eae158e7: examples/checked_run.rs

examples/checked_run.rs:
