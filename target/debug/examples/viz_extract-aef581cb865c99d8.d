/root/repo/target/debug/examples/viz_extract-aef581cb865c99d8.d: examples/viz_extract.rs

/root/repo/target/debug/examples/viz_extract-aef581cb865c99d8: examples/viz_extract.rs

examples/viz_extract.rs:
