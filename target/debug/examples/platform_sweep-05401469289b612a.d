/root/repo/target/debug/examples/platform_sweep-05401469289b612a.d: examples/platform_sweep.rs

/root/repo/target/debug/examples/platform_sweep-05401469289b612a: examples/platform_sweep.rs

examples/platform_sweep.rs:
