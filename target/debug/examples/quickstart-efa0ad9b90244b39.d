/root/repo/target/debug/examples/quickstart-efa0ad9b90244b39.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-efa0ad9b90244b39.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
