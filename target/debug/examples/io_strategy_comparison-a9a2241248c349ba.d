/root/repo/target/debug/examples/io_strategy_comparison-a9a2241248c349ba.d: examples/io_strategy_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libio_strategy_comparison-a9a2241248c349ba.rmeta: examples/io_strategy_comparison.rs Cargo.toml

examples/io_strategy_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
