/root/repo/target/debug/examples/platform_sweep-7009f6651826ba80.d: examples/platform_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libplatform_sweep-7009f6651826ba80.rmeta: examples/platform_sweep.rs Cargo.toml

examples/platform_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
