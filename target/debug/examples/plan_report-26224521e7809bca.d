/root/repo/target/debug/examples/plan_report-26224521e7809bca.d: examples/plan_report.rs

/root/repo/target/debug/examples/plan_report-26224521e7809bca: examples/plan_report.rs

examples/plan_report.rs:
