/root/repo/target/release/examples/restart_pipeline-5f87ca83774a2418.d: examples/restart_pipeline.rs

/root/repo/target/release/examples/restart_pipeline-5f87ca83774a2418: examples/restart_pipeline.rs

examples/restart_pipeline.rs:
