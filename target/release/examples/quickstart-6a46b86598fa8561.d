/root/repo/target/release/examples/quickstart-6a46b86598fa8561.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6a46b86598fa8561: examples/quickstart.rs

examples/quickstart.rs:
