/root/repo/target/release/examples/restart_pipeline-e1ebb0bd5c89ccb3.d: examples/restart_pipeline.rs

/root/repo/target/release/examples/restart_pipeline-e1ebb0bd5c89ccb3: examples/restart_pipeline.rs

examples/restart_pipeline.rs:
