/root/repo/target/release/examples/plan_report-9bb47936979a42ee.d: examples/plan_report.rs

/root/repo/target/release/examples/plan_report-9bb47936979a42ee: examples/plan_report.rs

examples/plan_report.rs:
