/root/repo/target/release/examples/quickstart-f2a9cc479d9dd79b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f2a9cc479d9dd79b: examples/quickstart.rs

examples/quickstart.rs:
