/root/repo/target/release/examples/checked_run-e233aa818403782c.d: examples/checked_run.rs

/root/repo/target/release/examples/checked_run-e233aa818403782c: examples/checked_run.rs

examples/checked_run.rs:
