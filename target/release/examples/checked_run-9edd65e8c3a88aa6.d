/root/repo/target/release/examples/checked_run-9edd65e8c3a88aa6.d: examples/checked_run.rs

/root/repo/target/release/examples/checked_run-9edd65e8c3a88aa6: examples/checked_run.rs

examples/checked_run.rs:
