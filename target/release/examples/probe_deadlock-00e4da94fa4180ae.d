/root/repo/target/release/examples/probe_deadlock-00e4da94fa4180ae.d: examples/probe_deadlock.rs

/root/repo/target/release/examples/probe_deadlock-00e4da94fa4180ae: examples/probe_deadlock.rs

examples/probe_deadlock.rs:
