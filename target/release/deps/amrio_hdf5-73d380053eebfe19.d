/root/repo/target/release/deps/amrio_hdf5-73d380053eebfe19.d: crates/hdf5/src/lib.rs

/root/repo/target/release/deps/libamrio_hdf5-73d380053eebfe19.rlib: crates/hdf5/src/lib.rs

/root/repo/target/release/deps/libamrio_hdf5-73d380053eebfe19.rmeta: crates/hdf5/src/lib.rs

crates/hdf5/src/lib.rs:
