/root/repo/target/release/deps/mdms_demo-8b97e050bc9026f0.d: crates/bench/src/bin/mdms_demo.rs

/root/repo/target/release/deps/mdms_demo-8b97e050bc9026f0: crates/bench/src/bin/mdms_demo.rs

crates/bench/src/bin/mdms_demo.rs:
