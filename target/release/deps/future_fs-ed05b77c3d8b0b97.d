/root/repo/target/release/deps/future_fs-ed05b77c3d8b0b97.d: crates/bench/src/bin/future_fs.rs

/root/repo/target/release/deps/future_fs-ed05b77c3d8b0b97: crates/bench/src/bin/future_fs.rs

crates/bench/src/bin/future_fs.rs:
