/root/repo/target/release/deps/fig7-8b6d568758ec7d46.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-8b6d568758ec7d46: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
