/root/repo/target/release/deps/fig9-4b2b925dfd30da48.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-4b2b925dfd30da48: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
