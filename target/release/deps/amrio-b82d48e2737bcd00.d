/root/repo/target/release/deps/amrio-b82d48e2737bcd00.d: src/lib.rs

/root/repo/target/release/deps/libamrio-b82d48e2737bcd00.rlib: src/lib.rs

/root/repo/target/release/deps/libamrio-b82d48e2737bcd00.rmeta: src/lib.rs

src/lib.rs:
