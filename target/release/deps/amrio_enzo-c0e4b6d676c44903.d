/root/repo/target/release/deps/amrio_enzo-c0e4b6d676c44903.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libamrio_enzo-c0e4b6d676c44903.rlib: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libamrio_enzo-c0e4b6d676c44903.rmeta: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/evolve.rs crates/core/src/ic.rs crates/core/src/io/mod.rs crates/core/src/io/hdf4.rs crates/core/src/io/hdf5.rs crates/core/src/io/mdms.rs crates/core/src/io/mpiio.rs crates/core/src/platform.rs crates/core/src/problem.rs crates/core/src/sort.rs crates/core/src/state.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/evolve.rs:
crates/core/src/ic.rs:
crates/core/src/io/mod.rs:
crates/core/src/io/hdf4.rs:
crates/core/src/io/hdf5.rs:
crates/core/src/io/mdms.rs:
crates/core/src/io/mpiio.rs:
crates/core/src/platform.rs:
crates/core/src/problem.rs:
crates/core/src/sort.rs:
crates/core/src/state.rs:
crates/core/src/wire.rs:
