/root/repo/target/release/deps/mdms_demo-5a8028b1b3aa378a.d: crates/bench/src/bin/mdms_demo.rs

/root/repo/target/release/deps/mdms_demo-5a8028b1b3aa378a: crates/bench/src/bin/mdms_demo.rs

crates/bench/src/bin/mdms_demo.rs:
