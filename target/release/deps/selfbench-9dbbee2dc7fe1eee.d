/root/repo/target/release/deps/selfbench-9dbbee2dc7fe1eee.d: crates/bench/src/bin/selfbench.rs

/root/repo/target/release/deps/selfbench-9dbbee2dc7fe1eee: crates/bench/src/bin/selfbench.rs

crates/bench/src/bin/selfbench.rs:
