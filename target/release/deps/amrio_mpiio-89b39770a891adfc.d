/root/repo/target/release/deps/amrio_mpiio-89b39770a891adfc.d: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

/root/repo/target/release/deps/libamrio_mpiio-89b39770a891adfc.rlib: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

/root/repo/target/release/deps/libamrio_mpiio-89b39770a891adfc.rmeta: crates/mpiio/src/lib.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/file.rs

crates/mpiio/src/lib.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/file.rs:
