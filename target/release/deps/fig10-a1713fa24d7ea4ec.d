/root/repo/target/release/deps/fig10-a1713fa24d7ea4ec.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-a1713fa24d7ea4ec: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
