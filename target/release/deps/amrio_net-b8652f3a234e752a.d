/root/repo/target/release/deps/amrio_net-b8652f3a234e752a.d: crates/net/src/lib.rs

/root/repo/target/release/deps/libamrio_net-b8652f3a234e752a.rlib: crates/net/src/lib.rs

/root/repo/target/release/deps/libamrio_net-b8652f3a234e752a.rmeta: crates/net/src/lib.rs

crates/net/src/lib.rs:
