/root/repo/target/release/deps/amrio_disk-40296ae44430306d.d: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

/root/repo/target/release/deps/libamrio_disk-40296ae44430306d.rlib: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

/root/repo/target/release/deps/libamrio_disk-40296ae44430306d.rmeta: crates/disk/src/lib.rs crates/disk/src/dev.rs crates/disk/src/fs.rs crates/disk/src/presets.rs crates/disk/src/store.rs crates/disk/src/trace.rs

crates/disk/src/lib.rs:
crates/disk/src/dev.rs:
crates/disk/src/fs.rs:
crates/disk/src/presets.rs:
crates/disk/src/store.rs:
crates/disk/src/trace.rs:
