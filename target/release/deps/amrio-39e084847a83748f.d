/root/repo/target/release/deps/amrio-39e084847a83748f.d: src/lib.rs

/root/repo/target/release/deps/libamrio-39e084847a83748f.rlib: src/lib.rs

/root/repo/target/release/deps/libamrio-39e084847a83748f.rmeta: src/lib.rs

src/lib.rs:
