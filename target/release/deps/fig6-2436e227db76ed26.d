/root/repo/target/release/deps/fig6-2436e227db76ed26.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-2436e227db76ed26: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
