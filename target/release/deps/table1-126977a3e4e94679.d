/root/repo/target/release/deps/table1-126977a3e4e94679.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-126977a3e4e94679: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
