/root/repo/target/release/deps/ablations-73e5b5b3cf6988a9.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-73e5b5b3cf6988a9: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
