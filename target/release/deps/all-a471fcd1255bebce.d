/root/repo/target/release/deps/all-a471fcd1255bebce.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-a471fcd1255bebce: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
