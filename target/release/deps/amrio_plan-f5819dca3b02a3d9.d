/root/repo/target/release/deps/amrio_plan-f5819dca3b02a3d9.d: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs

/root/repo/target/release/deps/libamrio_plan-f5819dca3b02a3d9.rlib: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs

/root/repo/target/release/deps/libamrio_plan-f5819dca3b02a3d9.rmeta: crates/plan/src/lib.rs crates/plan/src/conformance.rs crates/plan/src/footprint.rs crates/plan/src/metrics.rs crates/plan/src/schedule.rs crates/plan/src/verify.rs

crates/plan/src/lib.rs:
crates/plan/src/conformance.rs:
crates/plan/src/footprint.rs:
crates/plan/src/metrics.rs:
crates/plan/src/schedule.rs:
crates/plan/src/verify.rs:
