/root/repo/target/release/deps/amrio_bench-93dd37d0d28c38f8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libamrio_bench-93dd37d0d28c38f8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libamrio_bench-93dd37d0d28c38f8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
