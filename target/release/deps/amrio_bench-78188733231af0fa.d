/root/repo/target/release/deps/amrio_bench-78188733231af0fa.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/amrio_bench-78188733231af0fa: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
