/root/repo/target/release/deps/table1-0a2b70dc949731f2.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0a2b70dc949731f2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
