/root/repo/target/release/deps/table1-d42ccad84b3342fa.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d42ccad84b3342fa: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
