/root/repo/target/release/deps/kernels-7cf323032196cac7.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-7cf323032196cac7: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
