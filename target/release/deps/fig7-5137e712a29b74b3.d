/root/repo/target/release/deps/fig7-5137e712a29b74b3.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-5137e712a29b74b3: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
