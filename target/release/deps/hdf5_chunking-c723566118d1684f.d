/root/repo/target/release/deps/hdf5_chunking-c723566118d1684f.d: crates/bench/src/bin/hdf5_chunking.rs

/root/repo/target/release/deps/hdf5_chunking-c723566118d1684f: crates/bench/src/bin/hdf5_chunking.rs

crates/bench/src/bin/hdf5_chunking.rs:
