/root/repo/target/release/deps/io_analysis-8937c0433f5360f8.d: crates/bench/src/bin/io_analysis.rs

/root/repo/target/release/deps/io_analysis-8937c0433f5360f8: crates/bench/src/bin/io_analysis.rs

crates/bench/src/bin/io_analysis.rs:
