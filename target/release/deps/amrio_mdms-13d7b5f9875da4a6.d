/root/repo/target/release/deps/amrio_mdms-13d7b5f9875da4a6.d: crates/mdms/src/lib.rs

/root/repo/target/release/deps/libamrio_mdms-13d7b5f9875da4a6.rlib: crates/mdms/src/lib.rs

/root/repo/target/release/deps/libamrio_mdms-13d7b5f9875da4a6.rmeta: crates/mdms/src/lib.rs

crates/mdms/src/lib.rs:
