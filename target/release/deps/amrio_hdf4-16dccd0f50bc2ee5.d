/root/repo/target/release/deps/amrio_hdf4-16dccd0f50bc2ee5.d: crates/hdf4/src/lib.rs

/root/repo/target/release/deps/libamrio_hdf4-16dccd0f50bc2ee5.rlib: crates/hdf4/src/lib.rs

/root/repo/target/release/deps/libamrio_hdf4-16dccd0f50bc2ee5.rmeta: crates/hdf4/src/lib.rs

crates/hdf4/src/lib.rs:
