/root/repo/target/release/deps/fig9-1be1e4c0d9135b70.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-1be1e4c0d9135b70: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
