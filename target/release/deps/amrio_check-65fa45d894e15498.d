/root/repo/target/release/deps/amrio_check-65fa45d894e15498.d: crates/check/src/lib.rs crates/check/src/conform.rs

/root/repo/target/release/deps/libamrio_check-65fa45d894e15498.rlib: crates/check/src/lib.rs crates/check/src/conform.rs

/root/repo/target/release/deps/libamrio_check-65fa45d894e15498.rmeta: crates/check/src/lib.rs crates/check/src/conform.rs

crates/check/src/lib.rs:
crates/check/src/conform.rs:
