/root/repo/target/release/deps/amrio_amr-31cb43f3e57d6552.d: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

/root/repo/target/release/deps/libamrio_amr-31cb43f3e57d6552.rlib: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

/root/repo/target/release/deps/libamrio_amr-31cb43f3e57d6552.rmeta: crates/amr/src/lib.rs crates/amr/src/array.rs crates/amr/src/balance.rs crates/amr/src/decomp.rs crates/amr/src/grid.rs crates/amr/src/particles.rs crates/amr/src/refine.rs crates/amr/src/solver.rs

crates/amr/src/lib.rs:
crates/amr/src/array.rs:
crates/amr/src/balance.rs:
crates/amr/src/decomp.rs:
crates/amr/src/grid.rs:
crates/amr/src/particles.rs:
crates/amr/src/refine.rs:
crates/amr/src/solver.rs:
