/root/repo/target/release/deps/ablations-3dd6dcaf6f1cd2c8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-3dd6dcaf6f1cd2c8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
