/root/repo/target/release/deps/fig10-a804db80b38e5e36.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-a804db80b38e5e36: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
