/root/repo/target/release/deps/all-4231325cf60918dc.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-4231325cf60918dc: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
