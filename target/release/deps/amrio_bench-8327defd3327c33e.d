/root/repo/target/release/deps/amrio_bench-8327defd3327c33e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libamrio_bench-8327defd3327c33e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libamrio_bench-8327defd3327c33e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
