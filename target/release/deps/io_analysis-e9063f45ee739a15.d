/root/repo/target/release/deps/io_analysis-e9063f45ee739a15.d: crates/bench/src/bin/io_analysis.rs

/root/repo/target/release/deps/io_analysis-e9063f45ee739a15: crates/bench/src/bin/io_analysis.rs

crates/bench/src/bin/io_analysis.rs:
