/root/repo/target/release/deps/future_fs-70f49fda7c6914c8.d: crates/bench/src/bin/future_fs.rs

/root/repo/target/release/deps/future_fs-70f49fda7c6914c8: crates/bench/src/bin/future_fs.rs

crates/bench/src/bin/future_fs.rs:
