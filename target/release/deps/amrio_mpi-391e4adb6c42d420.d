/root/repo/target/release/deps/amrio_mpi-391e4adb6c42d420.d: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

/root/repo/target/release/deps/libamrio_mpi-391e4adb6c42d420.rlib: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

/root/repo/target/release/deps/libamrio_mpi-391e4adb6c42d420.rmeta: crates/mpi/src/lib.rs crates/mpi/src/coll.rs

crates/mpi/src/lib.rs:
crates/mpi/src/coll.rs:
