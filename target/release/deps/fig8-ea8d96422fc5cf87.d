/root/repo/target/release/deps/fig8-ea8d96422fc5cf87.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-ea8d96422fc5cf87: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
