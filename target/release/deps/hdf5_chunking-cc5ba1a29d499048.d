/root/repo/target/release/deps/hdf5_chunking-cc5ba1a29d499048.d: crates/bench/src/bin/hdf5_chunking.rs

/root/repo/target/release/deps/hdf5_chunking-cc5ba1a29d499048: crates/bench/src/bin/hdf5_chunking.rs

crates/bench/src/bin/hdf5_chunking.rs:
