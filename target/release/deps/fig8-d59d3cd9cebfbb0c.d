/root/repo/target/release/deps/fig8-d59d3cd9cebfbb0c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-d59d3cd9cebfbb0c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
