/root/repo/target/release/deps/fig6-5604cff5cb6c15e8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-5604cff5cb6c15e8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
