/root/repo/target/release/deps/amrio_simt-0a78bbe2897124dc.d: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

/root/repo/target/release/deps/libamrio_simt-0a78bbe2897124dc.rlib: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

/root/repo/target/release/deps/libamrio_simt-0a78bbe2897124dc.rmeta: crates/simt/src/lib.rs crates/simt/src/bytes.rs crates/simt/src/engine.rs crates/simt/src/sync.rs crates/simt/src/time.rs

crates/simt/src/lib.rs:
crates/simt/src/bytes.rs:
crates/simt/src/engine.rs:
crates/simt/src/sync.rs:
crates/simt/src/time.rs:
