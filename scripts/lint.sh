#!/usr/bin/env bash
# Tier-2 lint gate: formatting and clippy across the whole workspace.
# Run from the repo root. Fails on the first violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== nondeterminism lint (ordered containers at order-sensitive sites)"
# Modules whose outputs (reports, plans, verdicts, wire images) must be
# byte-stable across runs may not iterate unordered containers. Escape
# hatch: annotate the line with `// nondet: allow (reason)`.
nondet_scope=(
  crates/check/src
  crates/plan/src
  crates/recover/src
  crates/tune/src
  crates/verify/src
  crates/disk/src/trace.rs
  crates/core/src/state.rs
  crates/core/src/wire.rs
)
if grep -RnE 'Hash(Map|Set)' "${nondet_scope[@]}" | grep -v 'nondet: allow'; then
  echo "nondet lint: unordered container in an order-sensitive module"
  echo "  (use BTreeMap/BTreeSet, or annotate the line: // nondet: allow (reason))"
  exit 1
fi

echo "== unsafe-code lint (every crate root must forbid it)"
for root in src/lib.rs crates/*/src/lib.rs; do
  if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
    echo "unsafe lint: $root is missing #![forbid(unsafe_code)]"
    exit 1
  fi
done

echo "lint: OK"
