#!/usr/bin/env bash
# Tier-2 lint gate: formatting and clippy across the whole workspace.
# Run from the repo root. Fails on the first violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "lint: OK"
