#!/usr/bin/env bash
# Host-side self-benchmark: wall-clock, copy-ledger, and scheduler
# contention measurements of the simulator itself (not the virtual
# machine times the other bench binaries report). Runs the full
# selfbench matrix — 3 backends x small/large problem x 4/16 ranks x
# strict-checker on/off, each cell 3 reps reporting the median — plus
# an executor rank sweep (4 -> 1024 ranks), and writes
# BENCH_selfbench.json at the repo root.
#
# Usage:
#   scripts/bench.sh                  # full matrix + rank sweep
#                                     #   -> BENCH_selfbench.json
#   scripts/bench.sh --smoke          # 3-cell smoke subset (no sweep)
#   scripts/bench.sh --scale-smoke    # one 256-rank cell vs an absolute
#                                     #   wall-clock budget (CI scaling gate)
#   scripts/bench.sh --embed-before OLD.json
#                                     # splice a previous run under "before"
#                                     # for a before/after comparison file
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p amrio-bench --bin selfbench
exec cargo run --release -q -p amrio-bench --bin selfbench -- "$@"
