#!/usr/bin/env bash
# Host-side self-benchmark: wall-clock and copy-ledger measurements of
# the simulator itself (not the virtual machine times the other bench
# binaries report). Runs the full selfbench matrix — 3 backends x
# small/large problem x 4/16 ranks x strict-checker on/off — and writes
# BENCH_selfbench.json at the repo root.
#
# Usage:
#   scripts/bench.sh                  # full matrix -> BENCH_selfbench.json
#   scripts/bench.sh --smoke          # 3-cell smoke subset
#   scripts/bench.sh --embed-before OLD.json
#                                     # splice a previous run under "before"
#                                     # for a before/after comparison file
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p amrio-bench --bin selfbench
exec cargo run --release -q -p amrio-bench --bin selfbench -- "$@"
