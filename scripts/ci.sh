#!/usr/bin/env bash
# Full CI gate: lint (tier-2), the tier-1 build+test suite, the runtime
# correctness checker's integration tests, and the static planner's
# self-verification (exact-once, lockstep, plan<->trace conformance over
# the example configurations). Run from anywhere; fails on the first
# violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint (fmt + clippy)"
scripts/lint.sh

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== checker integration tests"
cargo test -q --test checker

echo "== planner self-verification (plan_report)"
cargo run --release --example plan_report

echo "ci: OK"
