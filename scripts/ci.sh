#!/usr/bin/env bash
# Full CI gate: lint (tier-2), the tier-1 build+test suite, the runtime
# correctness checker's integration tests, and the static planner's
# self-verification (exact-once, lockstep, plan<->trace conformance over
# the example configurations). Run from anywhere; fails on the first
# violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint (fmt + clippy)"
scripts/lint.sh

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== checker integration tests"
cargo test -q --test checker

echo "== planner self-verification (plan_report)"
cargo run --release --example plan_report

echo "== tune smoke (zero Error lints on presets; advisory beats every preset)"
cargo run --release -q -p amrio-bench --bin tune -- --smoke

echo "== verify smoke (static happens-before verdicts vs runtime checker, zero false negatives)"
cargo run --release -q -p amrio-bench --bin verify -- --smoke

echo "== resilience fault-matrix smoke (fault injection + graceful degradation)"
cargo run --release -q -p amrio-bench --bin resilience -- --smoke

echo "== crash-point sweep smoke (atomic commit + restart-from-latest)"
cargo run --release -q -p amrio-bench --bin crash -- --smoke

echo "== selfbench smoke (wall-clock regression gate)"
cargo run --release -q -p amrio-bench --bin selfbench -- --smoke --out /tmp/selfbench_smoke.json
baseline=$(grep -m1 '"smoke_total_wall_ms"' BENCH_selfbench.json | grep -o '[0-9.]*')
current=$(grep -m1 '"smoke_total_wall_ms"' /tmp/selfbench_smoke.json | grep -o '[0-9.]*')
echo "   committed baseline: ${baseline} ms, this run: ${current} ms"
awk -v b="$baseline" -v c="$current" 'BEGIN {
  if (c > b * 1.25) {
    printf "selfbench smoke regressed: %.1f ms > 1.25 x %.1f ms baseline\n", c, b
    exit 1
  }
}'

echo "== selfbench scale smoke (256-rank cell vs absolute executor-scaling budget)"
cargo run --release -q -p amrio-bench --bin selfbench -- --scale-smoke

echo "== loadgen smoke (serve cache: hot >= 20x cold rps, hot p99 budget, zero digest mismatches, coalescing proof)"
cargo run --release -q -p amrio-bench --bin loadgen -- --smoke

echo "ci: OK"
