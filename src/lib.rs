//! `amrio` — umbrella crate for the CLUSTER 2002 "I/O Analysis and
//! Optimization for an AMR Cosmology Application" reproduction.
//!
//! Re-exports every layer of the stack; see the README for the
//! architecture and `amrio_enzo` (re-exported as [`enzo`]) for the
//! application-level entry points. The `examples/` directory shows the
//! intended usage; `tests/` holds the cross-crate integration suite.

#![forbid(unsafe_code)]

pub use amrio_amr as amr;
pub use amrio_check as check;
pub use amrio_disk as disk;
pub use amrio_enzo as enzo;
pub use amrio_fault as fault;
pub use amrio_hdf4 as hdf4;
pub use amrio_hdf5 as hdf5;
pub use amrio_mdms as mdms;
pub use amrio_mpi as mpi;
pub use amrio_mpiio as mpiio;
pub use amrio_net as net;
pub use amrio_plan as plan;
pub use amrio_recover as recover;
pub use amrio_serve as serve;
pub use amrio_simt as simt;
pub use amrio_tune as tune;
pub use amrio_verify as verify;
